(* Tests for the PDL library: schema, codec (against the paper's
   listings), query API, patterns, diff/merge, views. *)

open Pdl_model.Machine

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Listing 1 of the paper, verbatim modulo whitespace. *)
let listing1_text =
  {|<Master id="0" quantity="1">
  <PUDescriptor>
    <Property fixed="true">
      <name>ARCHITECTURE</name>
      <value>x86</value>
    </Property>
  </PUDescriptor>
  <Worker quantity="1" id="1">
    <PUDescriptor>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>gpu</value>
      </Property>
    </PUDescriptor>
  </Worker>
  <Interconnect type="rDMA" from="0" to="1" scheme=""/>
</Master>|}

(* Listing 2: concrete OpenCL properties for the GPU worker, with
   subschema typing and prefixed children. *)
let listing2_properties =
  {|<PUDescriptor xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
      xmlns:ocl="urn:pdl:ocl">
  <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
    <ocl:name>DEVICE_NAME</ocl:name>
    <ocl:value>GeForce GTX 480</ocl:value>
  </Property>
  <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
    <ocl:name>MAX_COMPUTE_UNITS</ocl:name>
    <ocl:value>15</ocl:value>
  </Property>
  <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
    <ocl:name>MAX_WORK_ITEM_DIMENSIONS</ocl:name>
    <ocl:value>3</ocl:value>
  </Property>
  <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
    <ocl:name>GLOBAL_MEM_SIZE</ocl:name>
    <ocl:value unit="kB">1572864</ocl:value>
  </Property>
  <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
    <ocl:name>LOCAL_MEM_SIZE</ocl:name>
    <ocl:value unit="kB">48</ocl:value>
  </Property>
</PUDescriptor>|}

let parse_xml s = Pdl_xml.Decode.element_of_string_exn s

let listing1 =
  match Pdl.Codec.of_string listing1_text with
  | Ok pf -> pf
  | Error e -> failwith e

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let schema_tests =
  [
    Alcotest.test_case "listing 1 validates against the core schema" `Quick
      (fun () ->
        check (Alcotest.list string_) "no errors" []
          (List.map Pdl_xml.Schema.error_to_string
             (Pdl.Pdl_schema.validate (parse_xml listing1_text))));
    Alcotest.test_case "listing 2 fragment validates as PUDescriptor" `Quick
      (fun () ->
        let errs =
          Pdl_xml.Schema.validate_against Pdl.Pdl_schema.default_registry
            ~type_name:"PUDescriptorType"
            (parse_xml listing2_properties)
        in
        check (Alcotest.list string_) "no errors" []
          (List.map Pdl_xml.Schema.error_to_string errs));
    Alcotest.test_case "missing id is a schema error" `Quick (fun () ->
        let errs = Pdl.Pdl_schema.validate (parse_xml "<Master/>") in
        check bool_ "id required" true
          (List.exists
             (fun (e : Pdl_xml.Schema.error) -> contains e.message "id")
             errs));
    Alcotest.test_case "platform root with multiple masters" `Quick (fun () ->
        let doc =
          parse_xml
            {|<Platform name="dual">
                <Master id="0"/><Master id="1"/>
              </Platform>|}
        in
        check int_ "valid" 0 (List.length (Pdl.Pdl_schema.validate doc)));
    Alcotest.test_case "foreign elements rejected" `Quick (fun () ->
        let doc = parse_xml {|<Master id="0"><Gizmo/></Master>|} in
        check bool_ "rejected" true (Pdl.Pdl_schema.validate doc <> []));
    Alcotest.test_case "bad quantity rejected by schema" `Quick (fun () ->
        let doc = parse_xml {|<Master id="0" quantity="0"/>|} in
        check bool_ "rejected" true (Pdl.Pdl_schema.validate doc <> []));
  ]

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let codec_tests =
  [
    Alcotest.test_case "listing 1 decodes to the expected model" `Quick
      (fun () ->
        check int_ "one master" 1 (List.length listing1.pf_masters);
        let master = List.hd listing1.pf_masters in
        check string_ "master id" "0" master.pu_id;
        check (Alcotest.option string_) "master arch" (Some "x86")
          (pu_property master "ARCHITECTURE");
        let worker = List.hd master.pu_children in
        check bool_ "worker class" true (worker.pu_class = Worker);
        check (Alcotest.option string_) "worker arch" (Some "gpu")
          (pu_property worker "ARCHITECTURE");
        match master.pu_interconnects with
        | [ ic ] ->
            check string_ "ic type" "rDMA" ic.ic_type;
            check string_ "from" "0" ic.ic_from;
            check string_ "to" "1" ic.ic_to
        | _ -> Alcotest.fail "expected one interconnect");
    Alcotest.test_case "round trip listing 1" `Quick (fun () ->
        let text = Pdl.Codec.to_string listing1 in
        match Pdl.Codec.of_string text with
        | Ok pf2 -> check bool_ "equivalent" true (Pdl.Diff.equivalent listing1 pf2)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "bare master root chosen automatically" `Quick
      (fun () ->
        let text = Pdl.Codec.to_string listing1 in
        check bool_ "root is Master" true (contains text "<Master id=\"0\""));
    Alcotest.test_case "named platforms use a Platform root" `Quick (fun () ->
        let pf = { listing1 with pf_name = "gpgpu-box" } in
        let text = Pdl.Codec.to_string pf in
        check bool_ "root is Platform" true
          (contains text "<Platform name=\"gpgpu-box\">"));
    Alcotest.test_case "typed properties keep unit / schema / fixity" `Quick
      (fun () ->
        let doc =
          Printf.sprintf
            {|<Master id="0"><Worker id="1">%s</Worker></Master>|}
            listing2_properties
        in
        match Pdl.Codec.of_string doc with
        | Error e -> Alcotest.fail e
        | Ok pf ->
            let w = Option.get (find_pu pf "1") in
            let mem =
              Option.get (find_property w.pu_descriptor "GLOBAL_MEM_SIZE")
            in
            check string_ "value" "1572864" mem.p_value;
            check (Alcotest.option string_) "unit" (Some "kB") mem.p_unit;
            check bool_ "unfixed" false mem.p_fixed;
            check (Alcotest.option string_) "subschema"
              (Some "ocl:oclDevicePropertyType") mem.p_schema;
            check int_ "all five properties" 5
              (List.length w.pu_descriptor.d_properties));
    Alcotest.test_case "typed properties re-encode with prefix" `Quick
      (fun () ->
        let pf =
          platform ~name:""
            [
              pu Master "0"
                ~props:
                  [
                    property ~fixed:false ~schema:"ocl:oclDevicePropertyType"
                      ~unit_:"kB" "GLOBAL_MEM_SIZE" "1572864";
                  ];
            ]
        in
        let text = Pdl.Codec.to_string pf in
        check bool_ "prefixed name" true (contains text "<ocl:name>");
        check bool_ "unit attr" true (contains text "unit=\"kB\"");
        check bool_ "xsi type" true
          (contains text "xsi:type=\"ocl:oclDevicePropertyType\""));
    Alcotest.test_case "missing required attr is a codec error" `Quick
      (fun () ->
        match Pdl.Codec.of_string "<Master><Worker id=\"1\"/></Master>" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> check bool_ "mentions id" true (contains e "id"));
    Alcotest.test_case "load_string runs the whole pipeline" `Quick (fun () ->
        (match Pdl.Codec.load_string listing1_text with
        | Ok _ -> ()
        | Error msgs -> Alcotest.fail (String.concat "; " msgs));
        (* Schema-invalid: unknown element *)
        (match Pdl.Codec.load_string {|<Master id="0"><Gizmo/></Master>|} with
        | Ok _ -> Alcotest.fail "schema violation accepted"
        | Error _ -> ());
        (* Model-invalid: duplicate ids (schema cannot see this) *)
        match
          Pdl.Codec.load_string
            {|<Master id="0"><Worker id="1"/><Worker id="1"/></Master>|}
        with
        | Ok _ -> Alcotest.fail "duplicate id accepted"
        | Error msgs ->
            check bool_ "duplicate reported" true
              (List.exists (fun m -> contains m "duplicate") msgs));
    Alcotest.test_case "memory regions round trip" `Quick (fun () ->
        let pf =
          platform ~name:"mem"
            [
              pu Master "0"
                ~memory:
                  [
                    memory_region
                      ~props:[ property ~unit_:"MB" "SIZE" "1024" ]
                      "ram0";
                  ]
                ~children:[ pu Worker "1" ];
            ]
        in
        let text = Pdl.Codec.to_string pf in
        match Pdl.Codec.of_string text with
        | Error e -> Alcotest.fail e
        | Ok pf2 ->
            let m = List.hd pf2.pf_masters in
            check int_ "one region" 1 (List.length m.pu_memory);
            let mr = List.hd m.pu_memory in
            check string_ "id" "ram0" mr.mr_id;
            check (Alcotest.option string_) "size" (Some "1024")
              (property_value mr.mr_descriptor "SIZE"));
    Alcotest.test_case "logic groups round trip" `Quick (fun () ->
        let pf =
          platform ~name:""
            [
              pu Master "0"
                ~children:
                  [ pu Worker "1" ~groups:[ "executionset01"; "gpus" ] ];
            ]
        in
        match Pdl.Codec.of_string (Pdl.Codec.to_string pf) with
        | Error e -> Alcotest.fail e
        | Ok pf2 ->
            let w = Option.get (find_pu pf2 "1") in
            check (Alcotest.list string_) "groups"
              [ "executionset01"; "gpus" ] w.pu_groups);
  ]

(* ------------------------------------------------------------------ *)
(* Query                                                               *)

let gpu_server =
  (* Dual-socket Xeon + 2 GPUs, as in the paper's experiment. *)
  platform ~name:"xeon-2gpu"
    [
      pu Master "cpu"
        ~props:
          [
            property "ARCHITECTURE" "x86_64";
            property "CORES" "8";
            property "FREQ_MHZ" "2660";
          ]
        ~children:
          [
            pu Worker "gtx480"
              ~props:
                [
                  property "ARCHITECTURE" "gpu";
                  property "DEVICE_NAME" "GeForce GTX 480";
                  property "MAX_COMPUTE_UNITS" "15";
                ]
              ~groups:[ "executionset01"; "gpus" ];
            pu Worker "gtx285"
              ~props:
                [
                  property "ARCHITECTURE" "gpu";
                  property "DEVICE_NAME" "GeForce GTX 285";
                  property "MAX_COMPUTE_UNITS" "30";
                ]
              ~groups:[ "executionset01"; "gpus" ];
          ]
        ~interconnects:
          [
            interconnect ~type_:"PCIe" ~from:"cpu" ~to_:"gtx480" ();
            interconnect ~type_:"PCIe" ~from:"cpu" ~to_:"gtx285" ();
          ];
    ]

let query_tests =
  let open Pdl.Query in
  [
    Alcotest.test_case "class and property predicates" `Quick (fun () ->
        check int_ "gpu workers" 2
          (count ~where:(is_worker &&& architecture_is "GPU") gpu_server);
        check int_ "x86 masters" 1
          (count ~where:(is_master &&& architecture_is "x86_64") gpu_server);
        check int_ "nothing is hybrid" 0 (count ~where:is_hybrid gpu_server));
    Alcotest.test_case "property_at_least" `Quick (fun () ->
        check int_ "CU >= 20" 1
          (count ~where:(property_at_least "MAX_COMPUTE_UNITS" 20) gpu_server));
    Alcotest.test_case "group predicate" `Quick (fun () ->
        check int_ "executionset01" 2
          (count ~where:(in_group "executionset01") gpu_server);
        check int_ "combined" 1
          (count
             ~where:(in_group "gpus" &&& property_is "DEVICE_NAME" "GeForce GTX 480")
             gpu_server));
    Alcotest.test_case "boolean combinators" `Quick (fun () ->
        check int_ "negation" 1
          (count ~where:(not_ (architecture_is "gpu")) gpu_server);
        check int_ "disjunction" 3
          (count ~where:(is_master ||| is_worker) gpu_server));
    Alcotest.test_case "architectures" `Quick (fun () ->
        check (Alcotest.list string_) "distinct" [ "x86_64"; "gpu" ]
          (architectures gpu_server));
    Alcotest.test_case "property_values" `Quick (fun () ->
        check
          (Alcotest.list (Alcotest.pair string_ string_))
          "device names"
          [ ("gtx480", "GeForce GTX 480"); ("gtx285", "GeForce GTX 285") ]
          (property_values gpu_server "DEVICE_NAME"));
    Alcotest.test_case "workers_of and controllers_of" `Quick (fun () ->
        check int_ "workers under cpu" 2
          (List.length (workers_of gpu_server "cpu"));
        check (Alcotest.list string_) "controllers of gtx480" [ "cpu" ]
          (List.map (fun p -> p.pu_id) (controllers_of gpu_server "gtx480")));
    Alcotest.test_case "reachable over interconnects" `Quick (fun () ->
        check (Alcotest.list string_) "from cpu" [ "gtx480"; "gtx285" ]
          (reachable gpu_server ~from:"cpu");
        check (Alcotest.list string_) "from gtx480" [ "cpu"; "gtx285" ]
          (reachable gpu_server ~from:"gtx480"));
    Alcotest.test_case "path-expression select" `Quick (fun () ->
        (match select gpu_server "//Worker[@id='gtx285']" with
        | Ok [ pu ] -> check string_ "id" "gtx285" pu.pu_id
        | Ok _ -> Alcotest.fail "expected exactly one result"
        | Error e -> Alcotest.fail e);
        (match select gpu_server "//Worker" with
        | Ok pus -> check int_ "two" 2 (List.length pus)
        | Error e -> Alcotest.fail e);
        match select gpu_server "//Property" with
        | Ok _ -> Alcotest.fail "non-PU selection must error"
        | Error _ -> ());
    Alcotest.test_case "select rejects malformed paths" `Quick (fun () ->
        match select gpu_server "//[" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Pattern                                                             *)

let pattern_tests =
  let open Pdl.Pattern in
  [
    Alcotest.test_case "parse and print round trip" `Quick (fun () ->
        let srcs =
          [
            "Master";
            "*";
            "Master{ARCHITECTURE=x86}";
            "Master[Worker]";
            "Master{ARCHITECTURE=x86}[Worker{ARCHITECTURE=gpu}@gpu]";
            "Master[Worker{#gpus},Worker{quantity>=2}]";
            "Hybrid{CORES>=8}[Worker]@h";
          ]
        in
        List.iter (fun s -> check string_ s s (to_string (parse s))) srcs);
    Alcotest.test_case "parse errors" `Quick (fun () ->
        List.iter
          (fun bad ->
            match parse bad with
            | exception Parse_error _ -> ()
            | _ -> Alcotest.failf "expected Parse_error for %S" bad)
          [ ""; "Gizmo"; "Master{"; "Master["; "Master{x=}"; "Master]"; "Master{quantity>=x}" ]);
    Alcotest.test_case "simple class match" `Quick (fun () ->
        check bool_ "master matches" true
          (matches (parse "Master") gpu_server);
        check bool_ "hybrid absent" false
          (matches (parse "Hybrid") gpu_server));
    Alcotest.test_case "the paper's CPU+GPU pattern matches" `Quick (fun () ->
        let pat = parse "Master[Worker{ARCHITECTURE=gpu}]" in
        check bool_ "matches" true (matches pat gpu_server));
    Alcotest.test_case "embedding requires distinct children" `Quick
      (fun () ->
        let two_gpus = parse "Master[Worker{ARCHITECTURE=gpu},Worker{ARCHITECTURE=gpu}]" in
        let three_gpus =
          parse
            "Master[Worker{ARCHITECTURE=gpu},Worker{ARCHITECTURE=gpu},Worker{ARCHITECTURE=gpu}]"
        in
        check bool_ "two fit" true (matches two_gpus gpu_server);
        check bool_ "three do not" false (matches three_gpus gpu_server));
    Alcotest.test_case "quantity constraint" `Quick (fun () ->
        let pf =
          platform ~name:""
            [ pu Master "0" ~children:[ pu Worker "1" ~quantity:8 ] ]
        in
        check bool_ "8 >= 4" true (matches (parse "Master[Worker{quantity>=4}]") pf);
        check bool_ "8 < 16" false
          (matches (parse "Master[Worker{quantity>=16}]") pf));
    Alcotest.test_case "integer property constraint" `Quick (fun () ->
        check bool_ "CORES>=8" true
          (matches (parse "Master{CORES>=8}") gpu_server);
        check bool_ "CORES>=16" false
          (matches (parse "Master{CORES>=16}") gpu_server));
    Alcotest.test_case "group constraint" `Quick (fun () ->
        check bool_ "#gpus" true
          (matches (parse "Worker{#gpus}") gpu_server);
        check bool_ "#nope" false (matches (parse "Worker{#nope}") gpu_server));
    Alcotest.test_case "bindings returned by label" `Quick (fun () ->
        let pat =
          parse "Master@host[Worker{DEVICE_NAME=GeForce}@dev]"
        in
        (* DEVICE_NAME values contain spaces; word syntax cannot
           express them, so this must not match... *)
        check bool_ "no match on partial value" false (matches pat gpu_server);
        let pat = parse "Master@host[Worker{MAX_COMPUTE_UNITS>=30}@dev]" in
        match find_matches pat gpu_server with
        | [ (root, binding) ] ->
            check string_ "root" "cpu" root.pu_id;
            check (Alcotest.option string_) "host binding" (Some "cpu")
              (Option.map (fun p -> p.pu_id) (List.assoc_opt "host" binding));
            check (Alcotest.option string_) "dev binding" (Some "gtx285")
              (Option.map (fun p -> p.pu_id) (List.assoc_opt "dev" binding))
        | other -> Alcotest.failf "expected one match, got %d" (List.length other));
    Alcotest.test_case "deep matching finds inner nodes" `Quick (fun () ->
        let cell =
          platform ~name:""
            [
              pu Master "m"
                ~children:
                  [
                    pu Hybrid "h"
                      ~children:[ pu Worker "w" ~props:[ property "ARCHITECTURE" "spe" ] ];
                  ];
            ]
        in
        check bool_ "hybrid pattern found below master" true
          (matches (parse "Hybrid[Worker{ARCHITECTURE=spe}]") cell));
    Alcotest.test_case "specificity ranks patterns" `Quick (fun () ->
        let a = parse "Master" in
        let b = parse "Master{ARCHITECTURE=x86}[Worker{ARCHITECTURE=gpu}]" in
        check bool_ "more constrained is more specific" true
          (specificity b > specificity a));
  ]

(* ------------------------------------------------------------------ *)
(* Diff / instantiate                                                  *)

let diff_tests =
  let open Pdl.Diff in
  [
    Alcotest.test_case "identical platforms have no diff" `Quick (fun () ->
        check bool_ "equivalent" true (equivalent gpu_server gpu_server));
    Alcotest.test_case "added and removed PUs" `Quick (fun () ->
        let smaller = Pdl.View.apply_exn (Pdl.View.drop_pu "gtx285") gpu_server in
        let changes = diff gpu_server smaller in
        check bool_ "removed" true
          (List.exists (function Pu_removed "gtx285" -> true | _ -> false) changes);
        let changes_back = diff smaller gpu_server in
        check bool_ "added" true
          (List.exists (function Pu_added "gtx285" -> true | _ -> false) changes_back));
    Alcotest.test_case "property changes reported" `Quick (fun () ->
        let changed =
          {
            gpu_server with
            pf_masters =
              List.map
                (fun m ->
                  {
                    m with
                    pu_descriptor =
                      set_property m.pu_descriptor (property "CORES" "16");
                  })
                gpu_server.pf_masters;
          }
        in
        let changes = diff gpu_server changed in
        check bool_ "cores changed" true
          (List.exists
             (function
               | Property_changed { name = "CORES"; from_ = "8"; to_ = "16"; _ } ->
                   true
               | _ -> false)
             changes));
    Alcotest.test_case "instantiate fills only unfixed properties" `Quick
      (fun () ->
        let pf =
          platform ~name:""
            [
              pu Master "0"
                ~props:
                  [
                    property ~fixed:false "MAX_COMPUTE_UNITS" "";
                    property ~fixed:true "ARCHITECTURE" "gpu";
                  ];
            ]
        in
        let pf2 =
          instantiate
            ~values:
              [
                ("0", "MAX_COMPUTE_UNITS", "15");
                ("0", "ARCHITECTURE", "OVERWRITTEN");
              ]
            pf
        in
        let m = List.hd pf2.pf_masters in
        check (Alcotest.option string_) "filled" (Some "15")
          (pu_property m "MAX_COMPUTE_UNITS");
        check (Alcotest.option string_) "fixed untouched" (Some "gpu")
          (pu_property m "ARCHITECTURE"));
    Alcotest.test_case "missing_values lists empty unfixed props" `Quick
      (fun () ->
        let pf =
          platform ~name:""
            [
              pu Master "0"
                ~props:
                  [
                    property ~fixed:false "A" "";
                    property ~fixed:false "B" "set";
                    property ~fixed:true "C" "";
                  ];
            ]
        in
        check
          (Alcotest.list (Alcotest.pair string_ string_))
          "only A" [ ("0", "A") ] (missing_values pf));
    Alcotest.test_case "overlay copies probe values" `Quick (fun () ->
        let base =
          platform ~name:""
            [ pu Master "0" ~props:[ property ~fixed:false "FREQ" "" ] ]
        in
        let probe =
          platform ~name:""
            [ pu Master "0" ~props:[ property "FREQ" "2660" ] ]
        in
        let merged = overlay ~base ~probe in
        check (Alcotest.option string_) "freq" (Some "2660")
          (pu_property (List.hd merged.pf_masters) "FREQ"));
  ]

(* ------------------------------------------------------------------ *)
(* View                                                                *)

let cell_like =
  platform ~name:"cell"
    [
      pu Master "host"
        ~children:
          [
            pu Hybrid "ppe"
              ~props:[ property "ARCHITECTURE" "ppc64" ]
              ~children:
                [
                  pu Worker "spe0" ~groups:[ "simd" ];
                  pu Worker "spe1" ~groups:[ "simd" ];
                ];
            pu Worker "mic" ~props:[ property "ARCHITECTURE" "mic" ];
          ];
    ]

let view_tests =
  let open Pdl.View in
  [
    Alcotest.test_case "identity view" `Quick (fun () ->
        match apply identity gpu_server with
        | Ok pf -> check bool_ "same" true (Pdl.Diff.equivalent gpu_server pf)
        | Error e -> Alcotest.fail (String.concat ";" e));
    Alcotest.test_case "flatten collapses hybrids" `Quick (fun () ->
        let flat = apply_exn flatten cell_like in
        let m = List.hd flat.pf_masters in
        check bool_ "no hybrids" true
          (List.for_all (fun c -> c.pu_class = Worker) m.pu_children);
        (* ppe has a descriptor, so it is preserved as a worker. *)
        check (Alcotest.list string_) "children"
          [ "ppe"; "spe0"; "spe1"; "mic" ]
          (List.map (fun c -> c.pu_id) m.pu_children));
    Alcotest.test_case "flatten drops descriptor-less hybrids" `Quick
      (fun () ->
        let pf =
          platform ~name:""
            [
              pu Master "m"
                ~children:[ pu Hybrid "h" ~children:[ pu Worker "w" ] ];
            ]
        in
        let flat = apply_exn flatten pf in
        check (Alcotest.list string_) "only worker survives" [ "w" ]
          (List.map
             (fun c -> c.pu_id)
             (List.hd flat.pf_masters).pu_children));
    Alcotest.test_case "restrict_to_group keeps ancestors" `Quick (fun () ->
        let v = restrict_to_group "simd" in
        let simd = apply_exn v cell_like in
        check (Alcotest.list string_) "pus"
          [ "host"; "ppe"; "spe0"; "spe1" ]
          (List.map (fun p -> p.pu_id) (all_pus simd)));
    Alcotest.test_case "restrict to unknown group is invalid" `Quick
      (fun () ->
        match apply (restrict_to_group "nope") cell_like with
        | Ok _ -> Alcotest.fail "empty platform accepted"
        | Error msgs ->
            check bool_ "mentions view" true
              (List.exists (fun m -> contains m "restrict:nope") msgs));
    Alcotest.test_case "promote_hybrids wraps loose workers" `Quick
      (fun () ->
        let promoted = apply_exn promote_hybrids cell_like in
        let m = List.hd promoted.pf_masters in
        check bool_ "all children hybrid" true
          (List.for_all (fun c -> c.pu_class = Hybrid) m.pu_children);
        check bool_ "mic preserved under wrapper" true
          (find_pu promoted "mic" <> None));
    Alcotest.test_case "regroup and ungroup" `Quick (fun () ->
        let grouped =
          apply_exn
            (regroup ~group:"accel" ~where:(Pdl.Query.architecture_is "gpu"))
            gpu_server
        in
        check int_ "both gpus grouped" 2
          (List.length (group_members grouped "accel"));
        let cleared = apply_exn (ungroup "accel") grouped in
        check int_ "cleared" 0 (List.length (group_members cleared "accel")));
    Alcotest.test_case "compose chains views" `Quick (fun () ->
        let v =
          compose "flat-simd" [ flatten; rename "flat" ]
        in
        let out = apply_exn v cell_like in
        check string_ "renamed" "flat" out.pf_name;
        check bool_ "flattened" true
          (List.for_all
             (fun c -> c.pu_class = Worker)
             (List.hd out.pf_masters).pu_children));
    Alcotest.test_case "multiple views coexist for one system" `Quick
      (fun () ->
        (* The paper's point: same hardware, different logical views. *)
        let flat = apply_exn flatten cell_like in
        let hier = apply_exn promote_hybrids cell_like in
        check bool_ "different structures" false
          (Pdl.Diff.equivalent flat hier);
        check bool_ "both valid" true
          (Pdl_model.Validate.is_valid flat
          && Pdl_model.Validate.is_valid hier));
  ]

(* Codec round-trip property over random valid platforms. *)
let gen_platform =
  let open QCheck.Gen in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let gen_props =
    list_size (int_range 0 3)
      (map2
         (fun (k, schema) v ->
           property ?schema k v)
         (oneofl
            [
              ("ARCHITECTURE", None);
              ("FREQ", None);
              ("DEVICE_NAME", Some "ocl:oclDevicePropertyType");
            ])
         (oneofl [ "x86"; "gpu"; "GeForce GTX 480"; "15" ]))
  in
  let gen_worker =
    map3
      (fun q props gs -> pu Worker (fresh "w") ~quantity:(q + 1) ~props ~groups:gs)
      (int_range 0 3) gen_props
      (list_size (int_range 0 2) (oneofl [ "g1"; "g2" ]))
  in
  let gen_hybrid =
    map2
      (fun ws props -> pu Hybrid (fresh "h") ~props ~children:ws)
      (list_size (int_range 1 3) gen_worker)
      gen_props
  in
  let gen_master =
    map2
      (fun children props -> pu Master (fresh "m") ~props ~children)
      (list_size (int_range 0 3)
         (frequency [ (3, gen_worker); (1, gen_hybrid) ]))
      gen_props
  in
  map
    (fun masters -> platform ~name:"random" masters)
    (list_size (int_range 1 2) gen_master)

let codec_roundtrip_prop =
  QCheck.Test.make ~name:"codec round trip preserves platforms" ~count:100
    (QCheck.make ~print:Pdl.Codec.to_string gen_platform)
    (fun pf ->
      match Pdl.Codec.of_string (Pdl.Codec.to_string pf) with
      | Ok pf2 -> Pdl.Diff.equivalent pf pf2
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let generated_validate_prop =
  QCheck.Test.make ~name:"generated platforms pass the full pipeline"
    ~count:100
    (QCheck.make ~print:Pdl.Codec.to_string gen_platform)
    (fun pf ->
      match Pdl.Codec.load_string (Pdl.Codec.to_string pf) with
      | Ok _ -> true
      | Error msgs -> QCheck.Test.fail_reportf "%s" (String.concat "; " msgs))

(* Pattern print/parse round trip over generated patterns. *)
let gen_pattern =
  let open QCheck.Gen in
  let constr =
    oneof
      [
        map2 (fun n v -> Pdl.Pattern.Prop_eq (n, v))
          (oneofl [ "ARCHITECTURE"; "ROLE"; "FREQ" ])
          (oneofl [ "x86"; "gpu"; "spe"; "2660" ]);
        map2 (fun n b -> Pdl.Pattern.Prop_at_least (n, b))
          (oneofl [ "CORES"; "MAX_COMPUTE_UNITS" ])
          (int_range 1 64);
        map (fun n -> Pdl.Pattern.Prop_exists n) (oneofl [ "CACHE_KB"; "SOCKETS" ]);
        map (fun g -> Pdl.Pattern.In_group g) (oneofl [ "gpus"; "cpus" ]);
        map (fun q -> Pdl.Pattern.Quantity_at_least q) (int_range 1 16);
      ]
  in
  let rec pat depth =
    let children =
      if depth = 0 then return []
      else list_size (int_range 0 2) (pat (depth - 1))
    in
    map3
      (fun cls constraints (children, label) ->
        Pdl.Pattern.make ?cls ~constraints ~children ?label ())
      (oneofl
         [ None; Some Pdl_model.Machine.Master; Some Pdl_model.Machine.Hybrid;
           Some Pdl_model.Machine.Worker ])
      (list_size (int_range 0 3) constr)
      (pair children (oneofl [ None; Some "dev"; Some "host" ]))
  in
  pat 2

let pattern_roundtrip_prop =
  QCheck.Test.make ~name:"pattern print/parse round trip" ~count:200
    (QCheck.make ~print:Pdl.Pattern.to_string gen_pattern)
    (fun p ->
      let p2 = Pdl.Pattern.parse (Pdl.Pattern.to_string p) in
      Pdl.Pattern.to_string p = Pdl.Pattern.to_string p2)

(* Views preserve well-formedness on generated platforms. *)
let views_preserve_validity =
  QCheck.Test.make ~name:"flatten/promote keep platforms well-formed"
    ~count:100
    (QCheck.make ~print:Pdl.Codec.to_string gen_platform)
    (fun pf ->
      let flat = Pdl.View.apply Pdl.View.flatten pf in
      let promoted = Pdl.View.apply Pdl.View.promote_hybrids pf in
      Result.is_ok flat && Result.is_ok promoted)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pdl"
    [
      ("schema", schema_tests);
      ("codec", codec_tests);
      ("query", query_tests);
      ("pattern", pattern_tests);
      ("diff", diff_tests);
      ("view", view_tests);
      ( "properties",
        qt
          [
            codec_roundtrip_prop; generated_validate_prop;
            pattern_roundtrip_prop; views_preserve_validity;
          ] );
    ]

(* Tests for the hierarchical machine model and its validator. *)

open Pdl_model
open Machine

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* The paper's Listing 1 system: one x86 Master controlling one GPU
   Worker over rDMA. *)
let listing1 =
  platform ~name:"gpgpu"
    [
      pu Master "0"
        ~props:[ property "ARCHITECTURE" "x86" ]
        ~children:[ pu Worker "1" ~props:[ property "ARCHITECTURE" "gpu" ] ]
        ~interconnects:
          [ interconnect ~type_:"rDMA" ~from:"0" ~to_:"1" () ];
    ]

(* A deeper system in the spirit of Cell B.E.: Master -> Hybrid (PPE)
   -> 8 Workers (SPEs). *)
let cell_like =
  platform ~name:"cell"
    [
      pu Master "host"
        ~children:
          [
            pu Hybrid "ppe"
              ~props:[ property "ARCHITECTURE" "ppc64" ]
              ~groups:[ "control" ]
              ~children:
                [
                  pu Worker "spe" ~quantity:8
                    ~props:[ property "ARCHITECTURE" "spe" ]
                    ~groups:[ "simd" ]
                    ~memory:[ memory_region ~props:[ property "SIZE" "256" ] "ls" ];
                ]
              ~interconnects:
                [ interconnect ~type_:"EIB" ~from:"ppe" ~to_:"spe" () ];
          ]
        ~interconnects:[ interconnect ~type_:"XDR" ~from:"host" ~to_:"ppe" () ];
    ]

let machine_tests =
  [
    Alcotest.test_case "find_pu locates nested PUs" `Quick (fun () ->
        check bool_ "worker found" true (find_pu cell_like "spe" <> None);
        check bool_ "missing id" true (find_pu cell_like "nope" = None));
    Alcotest.test_case "parent_of" `Quick (fun () ->
        check (Alcotest.option string_) "spe parent" (Some "ppe")
          (Option.map (fun p -> p.pu_id) (parent_of cell_like "spe"));
        check bool_ "master has no parent" true
          (parent_of cell_like "host" = None));
    Alcotest.test_case "path_to" `Quick (fun () ->
        check (Alcotest.list string_) "control chain"
          [ "host"; "ppe"; "spe" ]
          (List.map (fun p -> p.pu_id) (path_to cell_like "spe"));
        check (Alcotest.list string_) "unknown id" []
          (List.map (fun p -> p.pu_id) (path_to cell_like "nope")));
    Alcotest.test_case "depth and counts" `Quick (fun () ->
        check int_ "depth" 3 (depth cell_like);
        check int_ "pu nodes" 3 (pu_count cell_like);
        check int_ "physical units" 10 (unit_count cell_like);
        check int_ "listing1 units" 2 (unit_count listing1));
    Alcotest.test_case "unit_count multiplies nested quantities" `Quick
      (fun () ->
        let pf =
          platform ~name:"q"
            [
              pu Master "m"
                ~children:
                  [
                    pu Hybrid "h" ~quantity:2
                      ~children:[ pu Worker "w" ~quantity:3 ];
                  ];
            ]
        in
        (* m + 2*(h + 3 w) = 1 + 2*4 = 9 *)
        check int_ "nested" 9 (unit_count pf));
    Alcotest.test_case "class selectors" `Quick (fun () ->
        check int_ "masters" 1 (List.length (masters cell_like));
        check int_ "hybrids" 1 (List.length (hybrids cell_like));
        check int_ "workers" 1 (List.length (workers cell_like)));
    Alcotest.test_case "groups" `Quick (fun () ->
        check (Alcotest.list string_) "names" [ "control"; "simd" ]
          (groups cell_like);
        check int_ "members" 1 (List.length (group_members cell_like "simd")));
    Alcotest.test_case "property accessors" `Quick (fun () ->
        let spe = Option.get (find_pu cell_like "spe") in
        check (Alcotest.option string_) "arch" (Some "spe")
          (pu_property spe "ARCHITECTURE");
        let mr = List.hd spe.pu_memory in
        check (Alcotest.option int_) "mr size" (Some 256)
          (property_int mr.mr_descriptor "SIZE"));
    Alcotest.test_case "set_property replaces by name" `Quick (fun () ->
        let d = descriptor [ property "A" "1"; property "B" "2" ] in
        let d = set_property d (property "A" "9") in
        check (Alcotest.option string_) "replaced" (Some "9")
          (property_value d "A");
        check int_ "no duplicates" 2 (List.length d.d_properties);
        let d = set_property d (property "C" "3") in
        check int_ "appended" 3 (List.length d.d_properties));
    Alcotest.test_case "unfixed_properties" `Quick (fun () ->
        let d =
          descriptor
            [ property ~fixed:false "X" ""; property ~fixed:true "Y" "1" ]
        in
        check int_ "one unfixed" 1 (List.length (unfixed_properties d)));
    Alcotest.test_case "interconnects collected across levels" `Quick
      (fun () ->
        check int_ "two ics" 2 (List.length (all_interconnects cell_like));
        check int_ "ppe endpoint" 2
          (List.length (connections_of cell_like "ppe")));
    Alcotest.test_case "routes finds transfer paths" `Quick (fun () ->
        let paths = routes cell_like "host" "spe" in
        check
          (Alcotest.list (Alcotest.list string_))
          "host->ppe->spe"
          [ [ "host"; "ppe"; "spe" ] ]
          paths;
        check
          (Alcotest.list (Alcotest.list string_))
          "self route" [ [ "host" ] ] (routes cell_like "host" "host");
        check bool_ "no route to unknown" true
          (routes cell_like "host" "nope" = []));
    Alcotest.test_case "routes explores alternatives" `Quick (fun () ->
        let pf =
          platform ~name:"tri"
            [
              pu Master "a"
                ~children:[ pu Worker "b"; pu Worker "c" ]
                ~interconnects:
                  [
                    interconnect ~type_:"x" ~from:"a" ~to_:"b" ();
                    interconnect ~type_:"x" ~from:"b" ~to_:"c" ();
                    interconnect ~type_:"x" ~from:"a" ~to_:"c" ();
                  ];
            ]
        in
        check int_ "two simple paths" 2 (List.length (routes pf "a" "c")));
    Alcotest.test_case "fold visits in pre-order" `Quick (fun () ->
        let order =
          List.rev (fold (fun acc pu -> pu.pu_id :: acc) [] cell_like)
        in
        check (Alcotest.list string_) "pre-order" [ "host"; "ppe"; "spe" ]
          order);
  ]

let valid pf = Validate.check pf = []

let violation_names pf =
  List.map Validate.violation_to_string (Validate.check pf)

let has_violation pf fragment =
  List.exists
    (fun msg ->
      let nh = String.length msg and nn = String.length fragment in
      let rec go i =
        i + nn <= nh && (String.sub msg i nn = fragment || go (i + 1))
      in
      go 0)
    (violation_names pf)

let validate_tests =
  [
    Alcotest.test_case "well-formed platforms pass" `Quick (fun () ->
        check bool_ "listing1" true (valid listing1);
        check bool_ "cell" true (valid cell_like));
    Alcotest.test_case "master below top rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad"
            [ pu Master "0" ~children:[ pu Master "1" ] ]
        in
        check bool_ "reported" true (has_violation pf "top level"));
    Alcotest.test_case "worker with children rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad"
            [ pu Master "0" ~children:[ pu Worker "1" ~children:[ pu Worker "2" ] ] ]
        in
        check bool_ "reported" true (has_violation pf "leaves"));
    Alcotest.test_case "childless hybrid rejected" `Quick (fun () ->
        let pf = platform ~name:"bad" [ pu Master "0" ~children:[ pu Hybrid "1" ] ] in
        check bool_ "reported" true (has_violation pf "no controlled PUs"));
    Alcotest.test_case "uncontrolled worker root rejected" `Quick (fun () ->
        let pf = platform ~name:"bad" [ pu Worker "w" ] in
        check bool_ "reported" true (has_violation pf "not controlled"));
    Alcotest.test_case "duplicate ids rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad"
            [ pu Master "0" ~children:[ pu Worker "1"; pu Worker "1" ] ]
        in
        check bool_ "reported" true (has_violation pf "duplicate"));
    Alcotest.test_case "bad quantity rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad"
            [ pu Master "0" ~children:[ pu Worker "1" ~quantity:0 ] ]
        in
        check bool_ "reported" true (has_violation pf "quantity"));
    Alcotest.test_case "dangling interconnect rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad"
            [
              pu Master "0"
                ~children:[ pu Worker "1" ]
                ~interconnects:
                  [ interconnect ~type_:"x" ~from:"0" ~to_:"99" () ];
            ]
        in
        check bool_ "reported" true (has_violation pf "unknown PU"));
    Alcotest.test_case "self interconnect rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad"
            [
              pu Master "0"
                ~children:[ pu Worker "1" ]
                ~interconnects:[ interconnect ~type_:"x" ~from:"0" ~to_:"0" () ];
            ]
        in
        check bool_ "reported" true (has_violation pf "loops"));
    Alcotest.test_case "empty platform rejected" `Quick (fun () ->
        check bool_ "reported" true
          (has_violation (platform ~name:"empty" []) "no Master"));
    Alcotest.test_case "empty group name rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad" [ pu Master "0" ~groups:[ "  " ] ]
        in
        check bool_ "reported" true (has_violation pf "group"));
    Alcotest.test_case "empty property name rejected" `Quick (fun () ->
        let pf =
          platform ~name:"bad" [ pu Master "0" ~props:[ property "" "x" ] ]
        in
        check bool_ "reported" true (has_violation pf "property"));
    Alcotest.test_case "check_exn raises with all messages" `Quick (fun () ->
        let pf = platform ~name:"bad" [ pu Worker "w" ~quantity:0 ] in
        match Validate.check_exn pf with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument msg ->
            check bool_ "mentions quantity" true
              (let nn = "quantity" in
               let rec go i =
                 i + String.length nn <= String.length msg
                 && (String.sub msg i (String.length nn) = nn || go (i + 1))
               in
               go 0));
    Alcotest.test_case "multi-master systems are legal" `Quick (fun () ->
        let pf =
          platform ~name:"dual"
            [
              pu Master "0" ~children:[ pu Worker "w0" ];
              pu Master "1" ~children:[ pu Worker "w1" ];
            ]
        in
        check bool_ "valid" true (valid pf));
  ]

(* Random platform generator (always well-formed by construction) and
   properties over it. *)
let gen_platform =
  let open QCheck.Gen in
  let fresh =
    let counter = ref 0 in
    fun prefix ->
      incr counter;
      Printf.sprintf "%s%d" prefix !counter
  in
  let gen_props =
    list_size (int_range 0 3)
      (map2
         (fun k v -> property k v)
         (oneofl [ "ARCHITECTURE"; "FREQ"; "CORES"; "MEM" ])
         (oneofl [ "x86"; "gpu"; "1000"; "8" ]))
  in
  let gen_worker =
    map2
      (fun q props -> pu Worker (fresh "w") ~quantity:(q + 1) ~props)
      (int_range 0 3) gen_props
  in
  let gen_hybrid =
    map2
      (fun ws props -> pu Hybrid (fresh "h") ~props ~children:ws)
      (list_size (int_range 1 3) gen_worker)
      gen_props
  in
  let gen_master =
    map2
      (fun children props -> pu Master (fresh "m") ~props ~children)
      (list_size (int_range 0 3)
         (frequency [ (3, gen_worker); (1, gen_hybrid) ]))
      gen_props
  in
  map
    (fun masters -> platform ~name:"random" masters)
    (list_size (int_range 1 2) gen_master)

let arbitrary_platform =
  QCheck.make ~print:(fun pf -> show_platform pf) gen_platform

let generated_platforms_valid =
  QCheck.Test.make ~name:"generated platforms are well-formed" ~count:200
    arbitrary_platform (fun pf -> Validate.check pf = [])

let unit_count_at_least_nodes =
  QCheck.Test.make ~name:"unit_count >= pu_count" ~count:200
    arbitrary_platform (fun pf -> unit_count pf >= pu_count pf)

let path_to_consistent =
  QCheck.Test.make ~name:"path_to ends at the target and starts at a master"
    ~count:200 arbitrary_platform (fun pf ->
      List.for_all
        (fun target ->
          match path_to pf target.pu_id with
          | [] -> false
          | path ->
              let first = List.hd path and last = List.nth path (List.length path - 1) in
              first.pu_class = Master && last.pu_id = target.pu_id)
        (all_pus pf))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pdl_model"
    [
      ("machine", machine_tests);
      ("validate", validate_tests);
      ( "properties",
        qt
          [
            generated_platforms_valid;
            unit_count_at_least_nodes;
            path_to_consistent;
          ] );
    ]

(* Tests for the simulated hardware prober and the platform zoo. *)

open Pdl_model.Machine
open Pdl_hwprobe

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let testbed =
  Probe.machine ~hostname:"testbed" Device_db.xeon_x5550
    ~gpus:
      [
        (Device_db.gtx480, Device_db.pcie2_x16);
        (Device_db.gtx285, Device_db.pcie2_x16);
      ]

let device_db_tests =
  [
    Alcotest.test_case "gtx480 matches Listing 2" `Quick (fun () ->
        let g = Device_db.gtx480 in
        check string_ "name" "GeForce GTX 480" g.gpu_model;
        check int_ "compute units" 15 g.compute_units;
        check int_ "work item dims" 3 g.work_item_dims;
        check int_ "global mem kB" 1572864 g.global_mem_kb;
        check int_ "local mem kB" 48 g.local_mem_kb);
    Alcotest.test_case "testbed CPU is the paper's" `Quick (fun () ->
        let c = Device_db.xeon_x5550 in
        check int_ "8 cores total" 8 (c.sockets * c.cores_per_socket);
        check int_ "2.66 GHz" 2660 c.freq_mhz);
    Alcotest.test_case "lookup by substring" `Quick (fun () ->
        check bool_ "gtx 480" true (Device_db.find_gpu "gtx 480" <> None);
        check bool_ "case-insensitive" true
          (Device_db.find_cpu "xeon" <> None);
        check bool_ "missing" true (Device_db.find_gpu "radeon" = None));
  ]

let probe_tests =
  [
    Alcotest.test_case "probed platform is well-formed" `Quick (fun () ->
        let pf = Probe.to_platform testbed in
        check (Alcotest.list string_) "no violations" []
          (List.map Pdl_model.Validate.violation_to_string
             (Pdl_model.Validate.check pf)));
    Alcotest.test_case "probed platform passes the full PDL pipeline" `Quick
      (fun () ->
        let text = Probe.to_pdl testbed in
        match Pdl.Codec.load_string text with
        | Ok _ -> ()
        | Error msgs -> Alcotest.fail (String.concat "; " msgs));
    Alcotest.test_case "structure: master + cpu pool + gpus" `Quick (fun () ->
        let pf = Probe.to_platform testbed in
        check int_ "one master" 1 (List.length (masters pf));
        check int_ "three workers" 3 (List.length (workers pf));
        let cores = Option.get (find_pu pf "cpu-cores") in
        check int_ "8-way pool" 8 cores.pu_quantity;
        check int_ "10 physical units" 11 (unit_count pf));
    Alcotest.test_case "gpu workers carry Listing 2 properties" `Quick
      (fun () ->
        let pf = Probe.to_platform testbed in
        let gpu0 = Option.get (find_pu pf "gpu0") in
        check (Alcotest.option string_) "device name"
          (Some "GeForce GTX 480")
          (pu_property gpu0 "DEVICE_NAME");
        let p = Option.get (find_property gpu0.pu_descriptor "GLOBAL_MEM_SIZE") in
        check (Alcotest.option string_) "unit" (Some "kB") p.p_unit;
        check bool_ "unfixed (runtime-generated)" false p.p_fixed;
        check (Alcotest.option string_) "ocl subschema"
          (Some "ocl:oclDevicePropertyType") p.p_schema);
    Alcotest.test_case "interconnects carry performance properties" `Quick
      (fun () ->
        let pf = Probe.to_platform testbed in
        let ics = connections_of pf "gpu0" in
        check int_ "one link" 1 (List.length ics);
        let ic = List.hd ics in
        check string_ "pcie" "PCIe" ic.ic_type;
        check (Alcotest.option string_) "bandwidth" (Some "5500")
          (property_value ic.ic_descriptor "BANDWIDTH_MBPS"));
    Alcotest.test_case "opencl_properties mirrors Listing 2 order" `Quick
      (fun () ->
        let names =
          List.map (fun p -> p.p_name) (Probe.opencl_properties Device_db.gtx480)
        in
        check (Alcotest.list string_) "field order"
          [
            "DEVICE_NAME";
            "MAX_COMPUTE_UNITS";
            "MAX_WORK_ITEM_DIMENSIONS";
            "GLOBAL_MEM_SIZE";
            "LOCAL_MEM_SIZE";
            "CLOCK_FREQUENCY";
          ]
          names);
    Alcotest.test_case "hwloc rendering mentions the topology" `Quick
      (fun () ->
        let txt = Probe.hwloc_render testbed in
        check bool_ "packages" true (contains txt "Package P#1");
        check bool_ "gpu" true (contains txt "GeForce GTX 480");
        check bool_ "cores" true (contains txt "Core C#7"));
  ]

let zoo_tests =
  [
    Alcotest.test_case "every zoo platform is schema- and model-valid" `Quick
      (fun () ->
        List.iter
          (fun (name, pf) ->
            match Pdl.Codec.load_string (Pdl.Codec.to_string pf) with
            | Ok _ -> ()
            | Error msgs ->
                Alcotest.failf "%s: %s" name (String.concat "; " msgs))
          Zoo.all);
    Alcotest.test_case "figure-5 targets exist" `Quick (fun () ->
        check bool_ "single" true (Zoo.find "xeon-single" <> None);
        check bool_ "smp" true (Zoo.find "xeon-x5550-smp" <> None);
        check bool_ "2gpu" true (Zoo.find "xeon-2gpu" <> None));
    Alcotest.test_case "xeon-2gpu has two distinct gpus" `Quick (fun () ->
        let pf = Zoo.xeon_2gpu in
        let names = Pdl.Query.property_values pf "DEVICE_NAME" in
        check
          (Alcotest.list (Alcotest.pair string_ string_))
          "devices"
          [ ("gpu0", "GeForce GTX 480"); ("gpu1", "GeForce GTX 285") ]
          names);
    Alcotest.test_case "cell platform uses the Hybrid class" `Quick (fun () ->
        check int_ "one hybrid" 1 (List.length (hybrids Zoo.cell_qs20));
        check int_ "depth 3" 3 (depth Zoo.cell_qs20));
    Alcotest.test_case "write_all produces loadable files" `Quick (fun () ->
        let dir = Filename.temp_file "zoo" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        Zoo.write_all ~dir;
        List.iter
          (fun (name, _) ->
            let path = Filename.concat dir (name ^ ".pdl") in
            match Pdl.Codec.load_file path with
            | Ok _ -> ()
            | Error msgs ->
                Alcotest.failf "%s: %s" path (String.concat "; " msgs))
          Zoo.all);
    Alcotest.test_case "platform patterns select the right zoo members"
      `Quick (fun () ->
        let gpu_pattern = Pdl.Pattern.parse "Master[Worker{ARCHITECTURE=gpu}]" in
        let matching =
          List.filter (fun (_, pf) -> Pdl.Pattern.matches gpu_pattern pf) Zoo.all
        in
        check (Alcotest.list string_) "gpu platforms"
          [ "xeon-2gpu"; "laptop-igpu"; "opencl-quad-gpu"; "dual-host" ]
          (List.map fst matching);
        let cell_pattern =
          Pdl.Pattern.parse "Hybrid[Worker{ARCHITECTURE=spe}]"
        in
        check bool_ "cell only" true
          (List.for_all
             (fun (name, pf) ->
               Pdl.Pattern.matches cell_pattern pf = (name = "cell-qs20"))
             Zoo.all));
  ]

let multimaster_tests =
  [
    Alcotest.test_case "dual-host has two co-existing masters" `Quick
      (fun () ->
        let pf = Pdl_hwprobe.Zoo.dual_host in
        check int_ "two masters" 2 (List.length (masters pf));
        check bool_ "valid" true (Pdl_model.Validate.is_valid pf));
    Alcotest.test_case "dual-host round trips through the Platform root"
      `Quick (fun () ->
        let text = Pdl.Codec.to_string Pdl_hwprobe.Zoo.dual_host in
        check bool_ "platform root" true
          (contains text "<Platform name=\"dual-host\">");
        match Pdl.Codec.load_string text with
        | Ok pf2 ->
            check bool_ "equivalent" true
              (Pdl.Diff.equivalent Pdl_hwprobe.Zoo.dual_host pf2)
        | Error msgs -> Alcotest.fail (String.concat "; " msgs));
    Alcotest.test_case "runtime machine spans both masters" `Quick (fun () ->
        let cfg =
          Taskrt.Machine_config.of_platform_exn Pdl_hwprobe.Zoo.dual_host
        in
        (* 4 + 4 cpu units + 2 gpus *)
        check int_ "ten workers" 10 (Array.length cfg.workers);
        check int_ "gpus group has both hosts' gpus" 2
          (List.length (Taskrt.Machine_config.workers_in_group cfg "gpus")));
    Alcotest.test_case "inter-host route crosses InfiniBand" `Quick
      (fun () ->
        let pf = Pdl_hwprobe.Zoo.dual_host in
        let routes = routes pf "hostA-gpu" "hostB-gpu" in
        check bool_ "route exists" true
          (List.mem
             [ "hostA-gpu"; "hostA"; "hostB"; "hostB-gpu" ]
             routes));
    Alcotest.test_case "dual-host runs the fig5 model" `Quick (fun () ->
        let cfg =
          Taskrt.Machine_config.of_platform_exn Pdl_hwprobe.Zoo.dual_host
        in
        let r =
          Taskrt.Tiled_dgemm.run_model ~policy:Taskrt.Engine.Heft ~tiles:8
            cfg ~n:4096
        in
        check bool_ "completes" true (r.stats.makespan > 0.0));
  ]

let () =
  Alcotest.run "pdl_hwprobe"
    [
      ("device_db", device_db_tests);
      ("probe", probe_tests);
      ("zoo", zoo_tests);
      ("multimaster", multimaster_tests);
    ]

  $ alias pdl_tool=../../bin/pdl_tool.exe
  $ pdl_tool zoo
  $ pdl_tool validate --zoo cell-qs20
  $ pdl_tool render --zoo xeon-single > single.pdl
  $ pdl_tool validate single.pdl
  $ pdl_tool query --zoo xeon-2gpu "//Worker"
  $ pdl_tool query --zoo xeon-2gpu "//Worker[@id='gpu1']"
  $ pdl_tool groups --zoo xeon-2gpu
  $ pdl_tool match --zoo xeon-2gpu "Master[Worker{ARCHITECTURE=gpu}@dev]"
  $ pdl_tool match --zoo xeon-x5550-smp "Master[Worker{ARCHITECTURE=gpu}]"
  $ pdl_tool view --zoo cell-qs20 flatten | grep -c "<Hybrid"
  $ pdl_tool view --zoo cell-qs20 flatten | grep -c "<Worker"
  $ pdl_tool probe --gpus 1 | grep -m1 DEVICE_NAME
  $ pdl_tool probe --gpus 1 --hwloc
  $ pdl_tool render --zoo xeon-single > a.pdl
  $ pdl_tool diff a.pdl a.pdl
  $ pdl_tool validate --zoo no-such-platform

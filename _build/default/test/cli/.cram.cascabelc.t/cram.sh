  $ alias cascabelc=../../bin/cascabelc.exe
  $ alias pdl_tool=../../bin/pdl_tool.exe
  $ cp ../../examples/programs/dgemm.c dgemm.c
  $ cascabelc run dgemm.c --serial
  $ cascabelc report dgemm.c --zoo xeon-x5550-smp
  $ cascabelc report dgemm.c --zoo xeon-2gpu
  $ cascabelc translate dgemm.c --zoo xeon-x5550-smp | grep -c dgemm_cublas
  $ cascabelc translate dgemm.c --zoo xeon-2gpu | grep -c dgemm_cublas
  $ cascabelc translate dgemm.c --zoo xeon-2gpu | grep cascabel_submit
  $ cascabelc translate dgemm.c --zoo xeon-2gpu --makefile -o /dev/null | grep -c nvcc
  $ cascabelc translate dgemm.c --zoo xeon-x5550-smp --makefile -o /dev/null | grep -c nvcc
  $ cascabelc run dgemm.c --zoo xeon-x5550-smp --policy eager
  $ cascabelc run dgemm.c --zoo xeon-2gpu --policy heft
  $ cat > badgroup.c <<'EOF'
  > #pragma cascabel task : x86 : I : v : (A: readwrite)
  > void f(double *A, int n) { A[0] = 1.0; }
  > int main(void) {
  >   double *A = malloc(8);
  >   #pragma cascabel execute I : gondwana
  >   f(A, 1);
  >   return 0;
  > }
  > EOF
  $ cascabelc translate badgroup.c --zoo xeon-2gpu
  $ pdl_tool render --zoo xeon-2gpu > machine.pdl
  $ cascabelc run dgemm.c --pdl machine.pdl

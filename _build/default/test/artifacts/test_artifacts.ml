(* Drift guards for the shipped artifacts: the PDL descriptors in
   platforms/ and the schema documents in schemas/ must stay in sync
   with the code that generated them. *)

let check = Alcotest.check
let bool_ = Alcotest.bool
let string_ = Alcotest.string
let int_ = Alcotest.int

let platforms_dir = "../../platforms"
let schemas_dir = "../../schemas"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let platform_tests =
  [
    Alcotest.test_case "every shipped descriptor loads and validates" `Quick
      (fun () ->
        List.iter
          (fun (name, _) ->
            let path = Filename.concat platforms_dir (name ^ ".pdl") in
            match Pdl.Codec.load_file path with
            | Ok _ -> ()
            | Error msgs ->
                Alcotest.failf "%s: %s" path (String.concat "; " msgs))
          Pdl_hwprobe.Zoo.all);
    Alcotest.test_case "shipped descriptors match the zoo exactly" `Quick
      (fun () ->
        List.iter
          (fun (name, zoo_pf) ->
            let path = Filename.concat platforms_dir (name ^ ".pdl") in
            match Pdl.Codec.load_file path with
            | Error msgs -> Alcotest.failf "%s: %s" path (String.concat ";" msgs)
            | Ok file_pf ->
                if not (Pdl.Diff.equivalent zoo_pf file_pf) then
                  Alcotest.failf
                    "%s drifted from the zoo; regenerate with \
                     Zoo.write_all:\n%s"
                    path
                    (String.concat "\n"
                       (List.map Pdl.Diff.change_to_string
                          (Pdl.Diff.diff zoo_pf file_pf))))
          Pdl_hwprobe.Zoo.all);
    Alcotest.test_case "descriptor files carry the testbed properties"
      `Quick (fun () ->
        let text = read_file (Filename.concat platforms_dir "xeon-2gpu.pdl") in
        let contains needle =
          let nh = String.length text and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
          in
          go 0
        in
        check bool_ "GTX 480" true (contains "GeForce GTX 480");
        check bool_ "ocl subschema" true
          (contains "xsi:type=\"ocl:oclDevicePropertyType\"");
        check bool_ "bandwidth" true (contains "BANDWIDTH_MBPS"));
  ]

let schema_tests =
  [
    Alcotest.test_case "shipped core schema loads" `Quick (fun () ->
        match
          Pdl_xml.Schema.of_string
            (read_file (Filename.concat schemas_dir "pdl-core.schema.xml"))
        with
        | Error e -> Alcotest.fail e
        | Ok s ->
            check string_ "id" "pdl-core" s.id;
            check int_ "type count"
              (List.length Pdl.Pdl_schema.core.types)
              (List.length s.types));
    Alcotest.test_case "shipped schemas validate the shipped platforms"
      `Quick (fun () ->
        (* Rebuild a registry purely from the shipped schema files and
           validate a shipped descriptor against it — the full
           "external artifact" loop, no compiled-in schema. *)
        let load name =
          Result.get_ok
            (Pdl_xml.Schema.of_string
               (read_file (Filename.concat schemas_dir name)))
        in
        let reg =
          List.fold_left
            (fun reg sub ->
              Result.get_ok (Pdl_xml.Schema.add_subschema reg sub))
            (Pdl_xml.Schema.registry (load "pdl-core.schema.xml"))
            [
              load "pdl-ocl.schema.xml";
              load "pdl-cuda.schema.xml";
              load "pdl-cell.schema.xml";
            ]
        in
        List.iter
          (fun (name, _) ->
            let path = Filename.concat platforms_dir (name ^ ".pdl") in
            let doc =
              Pdl_xml.Decode.element_of_string_exn (read_file path)
            in
            match Pdl_xml.Schema.validate reg doc with
            | [] -> ()
            | errs ->
                Alcotest.failf "%s: %s" path
                  (String.concat "; "
                     (List.map Pdl_xml.Schema.error_to_string errs)))
          Pdl_hwprobe.Zoo.all);
    Alcotest.test_case "subschema files declare the paper's ocl type" `Quick
      (fun () ->
        let text = read_file (Filename.concat schemas_dir "pdl-ocl.schema.xml") in
        let contains needle =
          let nh = String.length text and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
          in
          go 0
        in
        check bool_ "type name" true (contains "oclDevicePropertyType");
        check bool_ "extends PropertyType" true
          (contains "extends=\"PropertyType\""));
  ]

let () =
  Alcotest.run "artifacts"
    [ ("platforms", platform_tests); ("schemas", schema_tests) ]

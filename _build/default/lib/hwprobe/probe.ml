open Pdl_model.Machine

type machine = {
  hostname : string;
  cpu : Device_db.cpu;
  cpu_arch : string;
  cpu_link : Device_db.link;
  gpus : (Device_db.gpu * Device_db.link) list;
  accelerators : (Device_db.accelerator * Device_db.link) list;
}

let machine ?(cpu_arch = "x86_64") ?(cpu_link = Device_db.qpi) ?(gpus = [])
    ?(accelerators = []) ~hostname cpu =
  { hostname; cpu; cpu_arch; cpu_link; gpus; accelerators }

let ocl_schema = "ocl:oclDevicePropertyType"

let opencl_properties (g : Device_db.gpu) =
  [
    property ~fixed:false ~schema:ocl_schema "DEVICE_NAME" g.gpu_model;
    property ~fixed:false ~schema:ocl_schema "MAX_COMPUTE_UNITS"
      (string_of_int g.compute_units);
    property ~fixed:false ~schema:ocl_schema "MAX_WORK_ITEM_DIMENSIONS"
      (string_of_int g.work_item_dims);
    property ~fixed:false ~schema:ocl_schema ~unit_:"kB" "GLOBAL_MEM_SIZE"
      (string_of_int g.global_mem_kb);
    property ~fixed:false ~schema:ocl_schema ~unit_:"kB" "LOCAL_MEM_SIZE"
      (string_of_int g.local_mem_kb);
    property ~fixed:false ~schema:ocl_schema ~unit_:"MHz" "CLOCK_FREQUENCY"
      (string_of_int g.gpu_freq_mhz);
  ]

let perf_props gflops =
  [ property ~unit_:"GFLOPS" "DGEMM_THROUGHPUT" (Printf.sprintf "%.1f" gflops) ]

let link_props (l : Device_db.link) =
  [
    property ~unit_:"MB/s" "BANDWIDTH_MBPS"
      (Printf.sprintf "%.0f" l.bandwidth_mbps);
    property ~unit_:"us" "LATENCY_US" (Printf.sprintf "%.1f" l.latency_us);
  ]

let to_platform m =
  let c = m.cpu in
  let total_cores = c.sockets * c.cores_per_socket in
  let host_props =
    [
      property "ARCHITECTURE" m.cpu_arch;
      property "CPU_MODEL" c.cpu_model;
      property "SOCKETS" (string_of_int c.sockets);
      property "CORES" (string_of_int total_cores);
      property "THREADS_PER_CORE" (string_of_int c.threads_per_core);
      property ~unit_:"MHz" "FREQ_MHZ" (string_of_int c.freq_mhz);
      property ~unit_:"kB" "CACHE_KB" (string_of_int c.cache_kb);
    ]
  in
  let cpu_worker =
    pu Worker "cpu-cores" ~quantity:total_cores
      ~props:
        ([
           property "ARCHITECTURE" m.cpu_arch;
           property "ROLE" "cpu-core";
         ]
        @ perf_props c.dgemm_gflops_per_core)
      ~groups:[ "cpus"; "executionset01" ]
      ~memory:
        [
          memory_region
            ~props:[ property ~unit_:"kB" "SIZE" (string_of_int c.cache_kb) ]
            "llc";
        ]
  in
  let gpu_workers =
    List.mapi
      (fun i ((g : Device_db.gpu), _link) ->
        pu Worker
          (Printf.sprintf "gpu%d" i)
          ~props:
            ([ property "ARCHITECTURE" "gpu" ]
            @ opencl_properties g
            @ perf_props g.dgemm_gflops)
          ~groups:[ "gpus"; "executionset01" ]
          ~memory:
            [
              memory_region
                ~props:
                  [
                    property ~unit_:"kB" "SIZE" (string_of_int g.global_mem_kb);
                  ]
                (Printf.sprintf "gpu%d-global" i);
            ])
      m.gpus
  in
  let acc_workers =
    List.mapi
      (fun i ((a : Device_db.accelerator), _link) ->
        pu Worker
          (Printf.sprintf "acc%d" i)
          ~quantity:a.acc_count
          ~props:
            ([
               property "ARCHITECTURE" a.acc_arch;
               property "DEVICE_NAME" a.acc_model;
             ]
            @ perf_props a.acc_gflops)
          ~groups:[ "accelerators"; "executionset01" ]
          ~memory:
            [
              memory_region
                ~props:
                  [
                    property ~unit_:"kB" "SIZE"
                      (string_of_int a.acc_local_mem_kb);
                  ]
                (Printf.sprintf "acc%d-local" i);
            ])
      m.accelerators
  in
  let interconnects =
    interconnect ~type_:m.cpu_link.link_type ~from:"host" ~to_:"cpu-cores"
      ~props:(link_props m.cpu_link) ()
    :: List.mapi
         (fun i (_, (link : Device_db.link)) ->
           interconnect ~type_:link.link_type ~from:"host"
             ~to_:(Printf.sprintf "gpu%d" i)
             ~props:(link_props link) ())
         m.gpus
    @ List.mapi
        (fun i (_, (link : Device_db.link)) ->
          interconnect ~type_:link.link_type ~from:"host"
            ~to_:(Printf.sprintf "acc%d" i)
            ~props:(link_props link) ())
        m.accelerators
  in
  platform ~name:m.hostname
    [
      pu Master "host" ~props:host_props
        ~memory:[ memory_region ~props:[ property "KIND" "system-ram" ] "ram" ]
        ~children:((cpu_worker :: gpu_workers) @ acc_workers)
        ~interconnects;
    ]

let to_pdl m = Pdl.Codec.to_string (to_platform m)

let hwloc_render m =
  let buf = Buffer.create 256 in
  let c = m.cpu in
  Buffer.add_string buf (Printf.sprintf "Machine (%s)\n" m.hostname);
  for s = 0 to c.sockets - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  Package P#%d (%s, L3 %dkB)\n" s c.cpu_model c.cache_kb);
    for core = 0 to c.cores_per_socket - 1 do
      Buffer.add_string buf
        (Printf.sprintf "    Core C#%d (%d MHz, %d threads)\n"
           ((s * c.cores_per_socket) + core)
           c.freq_mhz c.threads_per_core)
    done
  done;
  List.iteri
    (fun _i ((g : Device_db.gpu), (l : Device_db.link)) ->
      Buffer.add_string buf
        (Printf.sprintf "  CoProc (%s) \"%s\" (%d CUs, %d kB global)\n"
           l.link_type g.gpu_model g.compute_units g.global_mem_kb))
    m.gpus;
  List.iteri
    (fun _i ((a : Device_db.accelerator), (l : Device_db.link)) ->
      Buffer.add_string buf
        (Printf.sprintf "  Accel (%s) \"%s\" x%d (%d kB local)\n" l.link_type
           a.acc_model a.acc_count a.acc_local_mem_kb))
    m.accelerators;
  Buffer.contents buf

(** Predefined platform descriptions ("PDL descriptors for various
    platforms" in Figure 1).

    The first three correspond to the paper's experiment targets:
    the serial baseline machine, the 8-core SMP target of the
    "starpu" translation, and the 8-core + GTX480 + GTX285 target of
    the "starpu+2gpus" translation. The rest exercise other classes
    of heterogeneous systems the PDL is meant to capture. *)

open Pdl_model.Machine

val single_core : platform
(** One Xeon-class core; the "single" baseline of Figure 5. *)

val xeon_x5550_smp : platform
(** Dual-socket quad-core Xeon X5550, no accelerators. *)

val xeon_2gpu : platform
(** The paper's testbed: the SMP machine plus GTX 480 and GTX 285 on
    PCIe. *)

val cell_qs20 : platform
(** A Cell-B.E.-style blade: Master host, Hybrid PPE controlling 8
    SPE Workers — exercises the three-class hierarchy. *)

val laptop_igpu : platform
(** Small dual-core laptop with a weak integrated GPU; used to show
    the offload crossover at small problem sizes. *)

val opencl_quad_gpu : platform
(** A 4-GPU compute node. *)

val dual_host : platform
(** Two co-existing Masters (paper §III-A), each controlling a CPU
    pool and one GPU, joined by an InfiniBand interconnect — the
    multi-Master class of system. *)

val all : (string * platform) list
(** Name [->] platform for every zoo member. *)

val find : string -> platform option

val write_all : dir:string -> unit
(** Write each platform as [<dir>/<name>.pdl]. *)

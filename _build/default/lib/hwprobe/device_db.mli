(** Synthetic hardware database.

    The paper generates concrete PDL properties by querying the
    Nvidia OpenCL runtime (Listing 2) and points at hwloc as a source
    for CPU topology. Neither exists in this environment, so this
    module is the substitution: a small database of device models with
    the same observable fields those APIs expose. The probe
    (see {!Probe}) turns entries into PDL descriptors; the values for
    the devices of the paper's testbed (Xeon X5550, GTX 480, GTX 285)
    mirror the published datasheets, and the GTX 480 entry reproduces
    Listing 2 exactly. *)

type cpu = {
  cpu_model : string;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  freq_mhz : int;
  cache_kb : int;  (** last-level cache per socket *)
  flops_per_cycle_dp : int;  (** DP FLOPs per cycle per core *)
  dgemm_gflops_per_core : float;
      (** sustained optimized-BLAS DGEMM throughput per core *)
}

type gpu = {
  gpu_model : string;  (** OpenCL [DEVICE_NAME] *)
  compute_units : int;  (** [MAX_COMPUTE_UNITS] *)
  work_item_dims : int;  (** [MAX_WORK_ITEM_DIMENSIONS] *)
  global_mem_kb : int;  (** [GLOBAL_MEM_SIZE] in kB *)
  local_mem_kb : int;  (** [LOCAL_MEM_SIZE] in kB *)
  gpu_freq_mhz : int;
  dgemm_gflops : float;  (** sustained CuBLAS-class DGEMM throughput *)
}

type link = {
  link_type : string;  (** PDL interconnect type, e.g. ["PCIe"] *)
  bandwidth_mbps : float;
  latency_us : float;
}

type accelerator = {
  acc_model : string;
  acc_arch : string;  (** PDL [ARCHITECTURE] value, e.g. ["spe"] *)
  acc_count : int;
  acc_gflops : float;
  acc_local_mem_kb : int;
}

val xeon_x5550 : cpu
(** 2.66 GHz quad-core Nehalem; the paper's testbed has two. *)

val gtx480 : gpu
(** Matches Listing 2 field-for-field. *)

val gtx285 : gpu
val cell_ppe : cpu
val cell_spe : accelerator
val generic_cpu : ?cores:int -> ?freq_mhz:int -> string -> cpu

val pcie2_x16 : link
val qpi : link
val eib : link
(** Cell Element Interconnect Bus. *)

val find_cpu : string -> cpu option
(** Lookup by model substring, case-insensitive. *)

val find_gpu : string -> gpu option
val cpus : cpu list
val gpus : gpu list

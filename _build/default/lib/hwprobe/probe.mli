(** Automatic generation of PDL descriptors from (simulated) hardware
    probes — the "possible automatic generation of PDL descriptors for
    various platforms" arrow in the paper's Figure 1.

    A {!machine} is what a node's OS/driver stack would let us
    enumerate: one CPU complex and a list of attached accelerators.
    {!to_platform} lowers it to the machine model, emitting:

    - a Master PU for the CPU complex with hwloc-style topology
      properties ([CORES], [SOCKETS], [FREQ_MHZ], ...), all [fixed];
    - one Worker per CPU core pool ([ARCHITECTURE] = the CPU ISA)
      so runtimes can schedule data-parallel CPU tasks;
    - one Worker per GPU with OpenCL-style properties
      ([DEVICE_NAME], [MAX_COMPUTE_UNITS], ...) typed
      [ocl:oclDevicePropertyType] and {e unfixed}, mirroring
      Listing 2 ("Generated from OpenCL run-time libraries");
    - Interconnect entities with [BANDWIDTH_MBPS] / [LATENCY_US]
      properties that performance models may consume.

    The generated platform always satisfies
    {!Pdl_model.Validate.check} and the PDL core schema. *)

type machine = {
  hostname : string;
  cpu : Device_db.cpu;
  cpu_arch : string;  (** e.g. ["x86_64"], ["ppc64"] *)
  cpu_link : Device_db.link;  (** CPU socket interconnect *)
  gpus : (Device_db.gpu * Device_db.link) list;
  accelerators : (Device_db.accelerator * Device_db.link) list;
}

val machine :
  ?cpu_arch:string ->
  ?cpu_link:Device_db.link ->
  ?gpus:(Device_db.gpu * Device_db.link) list ->
  ?accelerators:(Device_db.accelerator * Device_db.link) list ->
  hostname:string ->
  Device_db.cpu ->
  machine

val to_platform : machine -> Pdl_model.Machine.platform
(** Probe the machine into a PDL platform. PU ids are stable:
    ["host"], ["cpu-cores"], ["gpu0"], ["gpu1"], ..., ["acc0"], ... *)

val to_pdl : machine -> string
(** [to_platform] rendered as a PDL XML document. *)

val opencl_properties : Device_db.gpu -> Pdl_model.Machine.property list
(** Just the Listing 2 property block for one device. *)

val hwloc_render : machine -> string
(** An hwloc-[lstopo]-flavoured ASCII rendering of the topology, for
    humans; PDL is the machine-readable output. *)

type cpu = {
  cpu_model : string;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  freq_mhz : int;
  cache_kb : int;
  flops_per_cycle_dp : int;
  dgemm_gflops_per_core : float;
}

type gpu = {
  gpu_model : string;
  compute_units : int;
  work_item_dims : int;
  global_mem_kb : int;
  local_mem_kb : int;
  gpu_freq_mhz : int;
  dgemm_gflops : float;
}

type link = { link_type : string; bandwidth_mbps : float; latency_us : float }

type accelerator = {
  acc_model : string;
  acc_arch : string;
  acc_count : int;
  acc_gflops : float;
  acc_local_mem_kb : int;
}

(* Sustained DGEMM figures are calibrated to published GotoBLAS2 /
   CuBLAS 3.2 measurements on the paper's testbed generation; see
   EXPERIMENTS.md for the derivation. *)
let xeon_x5550 =
  {
    cpu_model = "Intel Xeon X5550";
    sockets = 2;
    cores_per_socket = 4;
    threads_per_core = 2;
    freq_mhz = 2660;
    cache_kb = 8192;
    flops_per_cycle_dp = 4;
    dgemm_gflops_per_core = 9.5;
  }

let gtx480 =
  {
    gpu_model = "GeForce GTX 480";
    compute_units = 15;
    work_item_dims = 3;
    global_mem_kb = 1572864;
    local_mem_kb = 48;
    gpu_freq_mhz = 1401;
    dgemm_gflops = 120.0;
  }

let gtx285 =
  {
    gpu_model = "GeForce GTX 285";
    compute_units = 30;
    work_item_dims = 3;
    global_mem_kb = 1048576;
    local_mem_kb = 16;
    gpu_freq_mhz = 1476;
    dgemm_gflops = 70.0;
  }

let cell_ppe =
  {
    cpu_model = "Cell B.E. PPE";
    sockets = 1;
    cores_per_socket = 1;
    threads_per_core = 2;
    freq_mhz = 3200;
    cache_kb = 512;
    flops_per_cycle_dp = 2;
    dgemm_gflops_per_core = 4.5;
  }

let cell_spe =
  {
    acc_model = "Cell B.E. SPE";
    acc_arch = "spe";
    acc_count = 8;
    acc_gflops = 1.8;
    acc_local_mem_kb = 256;
  }

let generic_cpu ?(cores = 4) ?(freq_mhz = 2000) cpu_model =
  {
    cpu_model;
    sockets = 1;
    cores_per_socket = cores;
    threads_per_core = 1;
    freq_mhz;
    cache_kb = 4096;
    flops_per_cycle_dp = 4;
    dgemm_gflops_per_core = float_of_int freq_mhz /. 1000.0 *. 3.0;
  }

let pcie2_x16 = { link_type = "PCIe"; bandwidth_mbps = 5500.0; latency_us = 10.0 }
let qpi = { link_type = "QPI"; bandwidth_mbps = 12000.0; latency_us = 0.4 }
let eib = { link_type = "EIB"; bandwidth_mbps = 25000.0; latency_us = 0.1 }

let cpus = [ xeon_x5550; cell_ppe ]
let gpus = [ gtx480; gtx285 ]

let matches needle hay =
  let needle = String.lowercase_ascii needle
  and hay = String.lowercase_ascii hay in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let find_cpu model = List.find_opt (fun c -> matches model c.cpu_model) cpus
let find_gpu model = List.find_opt (fun g -> matches model g.gpu_model) gpus

open Pdl_model.Machine
module D = Device_db

(* The serial baseline runs one thread: Nehalem turbo raises the
   single-core clock (2.66 -> 3.06 GHz), so its sustained DGEMM rate
   is ~10% above the per-core all-core rate. This calibration is what
   puts the SMP translation near the paper's ~7x rather than an
   idealized 8x. *)
let single_core =
  Probe.to_platform
    (Probe.machine ~hostname:"xeon-single"
       {
         D.xeon_x5550 with
         sockets = 1;
         cores_per_socket = 1;
         freq_mhz = 3060;
         dgemm_gflops_per_core = 10.5;
       })

let xeon_x5550_smp =
  Probe.to_platform (Probe.machine ~hostname:"xeon-x5550-smp" D.xeon_x5550)

let xeon_2gpu =
  Probe.to_platform
    (Probe.machine ~hostname:"xeon-2gpu" D.xeon_x5550
       ~gpus:[ (D.gtx480, D.pcie2_x16); (D.gtx285, D.pcie2_x16) ])

(* The Cell blade is built by hand: the probe emits flat
   Master/Worker systems, while Cell's PPE is the canonical Hybrid —
   controlled by the host, controlling the SPEs. *)
let cell_qs20 =
  let spe = D.cell_spe in
  platform ~name:"cell-qs20"
    [
      pu Master "host"
        ~props:
          [
            property "ARCHITECTURE" "ppc64";
            property "CPU_MODEL" D.cell_ppe.cpu_model;
            property ~unit_:"MHz" "FREQ_MHZ" (string_of_int D.cell_ppe.freq_mhz);
          ]
        ~children:
          [
            pu Hybrid "ppe"
              ~props:
                [
                  property "ARCHITECTURE" "ppc64";
                  property "ROLE" "control";
                  property ~unit_:"GFLOPS" "DGEMM_THROUGHPUT"
                    (Printf.sprintf "%.1f" D.cell_ppe.dgemm_gflops_per_core);
                ]
              ~children:
                [
                  pu Worker "spe" ~quantity:spe.acc_count
                    ~props:
                      [
                        property "ARCHITECTURE" spe.acc_arch;
                        property "DEVICE_NAME" spe.acc_model;
                        property ~unit_:"GFLOPS" "DGEMM_THROUGHPUT"
                          (Printf.sprintf "%.1f" spe.acc_gflops);
                      ]
                    ~groups:[ "simd"; "executionset01" ]
                    ~memory:
                      [
                        memory_region
                          ~props:
                            [
                              property ~unit_:"kB" "SIZE"
                                (string_of_int spe.acc_local_mem_kb);
                            ]
                          "ls";
                      ];
                ]
              ~interconnects:
                [
                  interconnect ~type_:D.eib.link_type ~from:"ppe" ~to_:"spe"
                    ~props:
                      [
                        property ~unit_:"MB/s" "BANDWIDTH_MBPS"
                          (Printf.sprintf "%.0f" D.eib.bandwidth_mbps);
                        property ~unit_:"us" "LATENCY_US"
                          (Printf.sprintf "%.1f" D.eib.latency_us);
                      ]
                    ();
                ];
          ]
        ~interconnects:
          [ interconnect ~type_:"XDR" ~from:"host" ~to_:"ppe" () ];
    ]

let laptop_igpu =
  let igpu =
    {
      D.gpu_model = "Integrated HD";
      compute_units = 4;
      work_item_dims = 3;
      global_mem_kb = 262144;
      local_mem_kb = 32;
      gpu_freq_mhz = 650;
      dgemm_gflops = 8.0;
    }
  in
  let slow_link =
    { D.link_type = "PCIe"; bandwidth_mbps = 1500.0; latency_us = 25.0 }
  in
  Probe.to_platform
    (Probe.machine ~hostname:"laptop-igpu"
       (D.generic_cpu ~cores:2 ~freq_mhz:2200 "Mobile Core2")
       ~gpus:[ (igpu, slow_link) ])

let opencl_quad_gpu =
  Probe.to_platform
    (Probe.machine ~hostname:"opencl-quad-gpu" D.xeon_x5550
       ~gpus:
         [
           (D.gtx480, D.pcie2_x16);
           (D.gtx480, D.pcie2_x16);
           (D.gtx285, D.pcie2_x16);
           (D.gtx285, D.pcie2_x16);
         ])

(* A dual-host system: two Masters co-exist at the top level (paper
   §III-A: "Master entities can only be defined on the highest
   hierarchical level but may co-exist with other Masters within the
   same system"), joined by an InfiniBand interconnect. Each host
   controls a CPU pool and one GPU. *)
let dual_host =
  let host name gpu =
    let gpu_id = name ^ "-gpu" and cpu_id = name ^ "-cpu" in
    pu Master name
      ~props:
        [
          property "ARCHITECTURE" "x86_64";
          property "CPU_MODEL" D.xeon_x5550.cpu_model;
          property "CORES" "4";
        ]
      ~children:
        [
          pu Worker cpu_id ~quantity:4
            ~props:
              [
                property "ARCHITECTURE" "x86_64";
                property "ROLE" "cpu-core";
                property ~unit_:"GFLOPS" "DGEMM_THROUGHPUT"
                  (Printf.sprintf "%.1f" D.xeon_x5550.dgemm_gflops_per_core);
              ]
            ~groups:[ "cpus"; "executionset01" ];
          pu Worker gpu_id
            ~props:
              ([ property "ARCHITECTURE" "gpu" ]
              @ Probe.opencl_properties gpu
              @ [
                  property ~unit_:"GFLOPS" "DGEMM_THROUGHPUT"
                    (Printf.sprintf "%.1f" gpu.D.dgemm_gflops);
                ])
            ~groups:[ "gpus"; "executionset01" ];
        ]
      ~interconnects:
        [
          interconnect ~type_:"QPI" ~from:name ~to_:cpu_id ();
          interconnect ~type_:"PCIe" ~from:name ~to_:gpu_id
            ~props:
              [
                property ~unit_:"MB/s" "BANDWIDTH_MBPS" "5500";
                property ~unit_:"us" "LATENCY_US" "10.0";
              ]
            ();
        ]
  in
  let a = host "hostA" D.gtx480 and b = host "hostB" D.gtx285 in
  {
    (platform ~name:"dual-host" [ a; b ]) with
    pf_masters =
      [
        {
          a with
          pu_interconnects =
            a.pu_interconnects
            @ [
                interconnect ~type_:"InfiniBand" ~from:"hostA" ~to_:"hostB"
                  ~props:
                    [
                      property ~unit_:"MB/s" "BANDWIDTH_MBPS" "3200";
                      property ~unit_:"us" "LATENCY_US" "1.5";
                    ]
                  ();
              ];
        };
        b;
      ];
  }

let all =
  [
    ("xeon-single", single_core);
    ("xeon-x5550-smp", xeon_x5550_smp);
    ("xeon-2gpu", xeon_2gpu);
    ("cell-qs20", cell_qs20);
    ("laptop-igpu", laptop_igpu);
    ("opencl-quad-gpu", opencl_quad_gpu);
    ("dual-host", dual_host);
  ]

let find name = List.assoc_opt name all

let write_all ~dir =
  List.iter
    (fun (name, pf) ->
      Pdl.Codec.save_file (Filename.concat dir (name ^ ".pdl")) pf)
    all

lib/hwprobe/device_db.ml: List String

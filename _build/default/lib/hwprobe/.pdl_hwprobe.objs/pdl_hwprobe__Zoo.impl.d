lib/hwprobe/zoo.ml: Device_db Filename List Pdl Pdl_model Printf Probe

lib/hwprobe/device_db.mli:

lib/hwprobe/zoo.mli: Pdl_model

lib/hwprobe/probe.mli: Device_db Pdl_model

lib/hwprobe/probe.ml: Buffer Device_db List Pdl Pdl_model Printf

lib/kernels/lapack.ml: Float Matrix Printf

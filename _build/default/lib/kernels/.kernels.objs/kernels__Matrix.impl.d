lib/kernels/matrix.ml: Array Float Format Int64

lib/kernels/blas.ml: Array Matrix Printf

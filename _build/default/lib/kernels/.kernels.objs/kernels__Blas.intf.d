lib/kernels/blas.mli: Matrix

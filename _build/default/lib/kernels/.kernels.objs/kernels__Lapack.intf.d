lib/kernels/lapack.mli: Matrix

type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

(* Numerical Recipes LCG; deterministic across runs and platforms. *)
let random ?(seed = 42) rows cols =
  let state = ref (Int64.of_int (seed land 0x3FFFFFFF)) in
  let next () =
    state :=
      Int64.add (Int64.mul !state 1664525L) 1013904223L
      |> Int64.logand 0xFFFFFFFFL;
    (* map to [-1, 1) *)
    (Int64.to_float !state /. 2147483648.0) -. 1.0
  in
  init rows cols (fun _ _ -> next ())

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v
let copy m = { m with data = Array.copy m.data }
let dims m = (m.rows, m.cols)

let sub_block m ~row ~col ~rows ~cols =
  if row < 0 || col < 0 || row + rows > m.rows || col + cols > m.cols then
    invalid_arg "Matrix.sub_block: out of bounds";
  init rows cols (fun i j -> get m (row + i) (col + j))

let set_block m ~row ~col b =
  if row < 0 || col < 0 || row + b.rows > m.rows || col + b.cols > m.cols then
    invalid_arg "Matrix.set_block: out of bounds";
  for i = 0 to b.rows - 1 do
    for j = 0 to b.cols - 1 do
      set m (row + i) (col + j) (get b i j)
    done
  done

let frobenius m =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. (x *. x)) m.data;
  sqrt !acc

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.data.(i)) in
      if d > !worst then worst := d)
    a.data;
  !worst

let approx_equal ?(tol = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (frobenius a) (frobenius b)) in
  max_abs_diff a b <= tol *. scale

let checksum m =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. x) m.data;
  !acc

let pp ppf m =
  if m.rows * m.cols <= 64 then begin
    Format.fprintf ppf "@[<v>";
    for i = 0 to m.rows - 1 do
      Format.fprintf ppf "[";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.fprintf ppf " ";
        Format.fprintf ppf "%8.4f" (get m i j)
      done;
      Format.fprintf ppf "]";
      if i < m.rows - 1 then Format.pp_print_cut ppf ()
    done;
    Format.fprintf ppf "@]"
  end
  else
    Format.fprintf ppf "<%dx%d matrix, frobenius %.6g>" m.rows m.cols
      (frobenius m)

(** Double-precision BLAS-like kernels.

    These are the task implementation variants of the case study: the
    serial input program calls {!dgemm} ("a highly optimized BLAS
    library" in the paper — here the blocked OCaml implementation),
    and the generated programs run the same kernel per tile on CPU
    workers and (simulated) GPU workers.

    Conventions follow BLAS: [dgemm ~alpha a b ~beta c] computes
    [c := alpha * a*b + beta * c] in place. *)

val dgemm_naive :
  ?alpha:float -> ?beta:float -> Matrix.t -> Matrix.t -> Matrix.t -> unit
(** Triple loop, reference implementation. *)

val dgemm :
  ?alpha:float -> ?beta:float -> ?block:int -> Matrix.t -> Matrix.t ->
  Matrix.t -> unit
(** Cache-blocked (default block 64) with an ikj inner order. Bitwise
    results may differ from {!dgemm_naive} only by rounding. *)

val dgemv : ?alpha:float -> ?beta:float -> Matrix.t -> float array ->
  float array -> unit
(** [y := alpha*A*x + beta*y]. *)

val daxpy : float -> float array -> float array -> unit
(** [y := a*x + y]. *)

val ddot : float array -> float array -> float
val dscal : float -> float array -> unit
val dnrm2 : float array -> float

val vector_add : float array -> float array -> unit
(** [a := a + b] — the paper's vecadd task example. *)

val flops_dgemm : int -> int -> int -> float
(** FLOP count of [m x k] times [k x n]: [2*m*n*k]. *)

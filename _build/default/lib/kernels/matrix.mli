(** Dense row-major double-precision matrices.

    The storage is a plain [float array] (unboxed in OCaml), indexed
    as [a.(i * cols + j)]. All kernels in {!Blas} operate on this
    representation. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** Zero-filled [rows x cols] matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t

val random : ?seed:int -> int -> int -> t
(** Deterministic pseudo-random entries in [[-1, 1)]; the same seed
    always yields the same matrix (own LCG, independent of
    [Stdlib.Random]). *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val dims : t -> int * int

val sub_block : t -> row:int -> col:int -> rows:int -> cols:int -> t
(** Copy of a block; used by tiled algorithms and tests. *)

val set_block : t -> row:int -> col:int -> t -> unit
(** Paste a block back. *)

val frobenius : t -> float
val max_abs_diff : t -> t -> float
(** [max |a_ij - b_ij|]; raises [Invalid_argument] on shape
    mismatch. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Default tolerance [1e-9] on the max absolute difference scaled by
    the larger Frobenius norm. *)

val checksum : t -> float
(** Order-independent content digest used by integration tests. *)

val pp : Format.formatter -> t -> unit
(** Prints small matrices fully, large ones abridged. *)

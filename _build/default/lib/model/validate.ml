open Machine

type violation =
  | Master_below_top of { id : string; parent : string }
  | Worker_with_children of { id : string }
  | Hybrid_without_children of { id : string }
  | Uncontrolled_pu of { id : string; cls : Machine.pu_class }
  | Duplicate_id of { id : string }
  | Bad_quantity of { id : string; quantity : int }
  | Dangling_interconnect of { from_ : string; to_ : string; missing : string }
  | Self_interconnect of { id : string }
  | Empty_platform
  | Empty_group_name of { id : string }
  | Empty_property_name of { id : string }

let pp_violation ppf = function
  | Master_below_top { id; parent } ->
      Format.fprintf ppf
        "Master %S is controlled by %S; Masters may only appear at the top \
         level"
        id parent
  | Worker_with_children { id } ->
      Format.fprintf ppf "Worker %S controls other PUs; Workers are leaves" id
  | Hybrid_without_children { id } ->
      Format.fprintf ppf
        "Hybrid %S has no controlled PUs; use a Worker for leaf resources" id
  | Uncontrolled_pu { id; cls } ->
      Format.fprintf ppf
        "%s %S is not controlled by any Master or Hybrid"
        (pu_class_to_string cls) id
  | Duplicate_id { id } -> Format.fprintf ppf "duplicate PU id %S" id
  | Bad_quantity { id; quantity } ->
      Format.fprintf ppf "PU %S has quantity %d; must be at least 1" id
        quantity
  | Dangling_interconnect { from_; to_; missing } ->
      Format.fprintf ppf
        "interconnect %S -> %S references unknown PU %S" from_ to_ missing
  | Self_interconnect { id } ->
      Format.fprintf ppf "interconnect loops on PU %S" id
  | Empty_platform ->
      Format.fprintf ppf "platform has no Master processing unit"
  | Empty_group_name { id } ->
      Format.fprintf ppf "PU %S has an empty logic-group name" id
  | Empty_property_name { id } ->
      Format.fprintf ppf "PU %S has a property with an empty name" id

let violation_to_string v = Format.asprintf "%a" pp_violation v

let check pf =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  if pf.pf_masters = [] then report Empty_platform;
  (* Roots must be Masters. *)
  List.iter
    (fun root ->
      match root.pu_class with
      | Master -> ()
      | (Hybrid | Worker) as cls ->
          report (Uncontrolled_pu { id = root.pu_id; cls }))
    pf.pf_masters;
  (* Structural rules, walked with the parent at hand. *)
  let rec walk ~parent pu =
    (match (pu.pu_class, parent) with
    | Master, Some p -> report (Master_below_top { id = pu.pu_id; parent = p })
    | Worker, _ when pu.pu_children <> [] ->
        report (Worker_with_children { id = pu.pu_id })
    | Hybrid, _ when pu.pu_children = [] ->
        report (Hybrid_without_children { id = pu.pu_id })
    | _ -> ());
    if pu.pu_quantity < 1 then
      report (Bad_quantity { id = pu.pu_id; quantity = pu.pu_quantity });
    List.iter
      (fun g -> if String.trim g = "" then report (Empty_group_name { id = pu.pu_id }))
      pu.pu_groups;
    List.iter
      (fun p ->
        if String.trim p.p_name = "" then
          report (Empty_property_name { id = pu.pu_id }))
      pu.pu_descriptor.d_properties;
    List.iter (walk ~parent:(Some pu.pu_id)) pu.pu_children
  in
  List.iter (walk ~parent:None) pf.pf_masters;
  (* Unique ids. *)
  let ids = List.map (fun pu -> pu.pu_id) (all_pus pf) in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then report (Duplicate_id { id })
      else Hashtbl.add seen id ())
    ids;
  (* Interconnect endpoints. *)
  let known id = Hashtbl.mem seen id in
  List.iter
    (fun ic ->
      if ic.ic_from = ic.ic_to then report (Self_interconnect { id = ic.ic_from });
      List.iter
        (fun endpoint ->
          if not (known endpoint) then
            report
              (Dangling_interconnect
                 { from_ = ic.ic_from; to_ = ic.ic_to; missing = endpoint }))
        (List.filter (fun e -> not (known e)) [ ic.ic_from; ic.ic_to ]))
    (all_interconnects pf);
  List.rev !violations

let is_valid pf = check pf = []

let check_exn pf =
  match check pf with
  | [] -> pf
  | vs ->
      invalid_arg
        (Printf.sprintf "invalid platform %S: %s" pf.pf_name
           (String.concat "; " (List.map violation_to_string vs)))

type pu_class = Master | Hybrid | Worker [@@deriving show { with_path = false }, eq]

let pu_class_to_string = function
  | Master -> "Master"
  | Hybrid -> "Hybrid"
  | Worker -> "Worker"

let pu_class_of_string = function
  | "Master" -> Some Master
  | "Hybrid" -> Some Hybrid
  | "Worker" -> Some Worker
  | _ -> None

type property = {
  p_name : string;
  p_value : string;
  p_unit : string option;
  p_fixed : bool;
  p_schema : string option;
}
[@@deriving show { with_path = false }, eq]

type descriptor = { d_properties : property list }
[@@deriving show { with_path = false }, eq]

type memory_region = { mr_id : string; mr_descriptor : descriptor }
[@@deriving show { with_path = false }, eq]

type interconnect = {
  ic_type : string;
  ic_from : string;
  ic_to : string;
  ic_scheme : string;
  ic_descriptor : descriptor;
}
[@@deriving show { with_path = false }, eq]

type pu = {
  pu_id : string;
  pu_class : pu_class;
  pu_quantity : int;
  pu_descriptor : descriptor;
  pu_memory : memory_region list;
  pu_groups : string list;
  pu_children : pu list;
  pu_interconnects : interconnect list;
}
[@@deriving show { with_path = false }, eq]

type platform = { pf_name : string; pf_masters : pu list }
[@@deriving show { with_path = false }, eq]

let property ?unit_ ?(fixed = true) ?schema p_name p_value =
  { p_name; p_value; p_unit = unit_; p_fixed = fixed; p_schema = schema }

let descriptor d_properties = { d_properties }
let no_descriptor = { d_properties = [] }

let memory_region ?(props = []) mr_id =
  { mr_id; mr_descriptor = descriptor props }

let interconnect ?(scheme = "") ?(props = []) ~type_ ~from ~to_ () =
  {
    ic_type = type_;
    ic_from = from;
    ic_to = to_;
    ic_scheme = scheme;
    ic_descriptor = descriptor props;
  }

let pu ?(quantity = 1) ?(props = []) ?(memory = []) ?(groups = [])
    ?(children = []) ?(interconnects = []) pu_class pu_id =
  {
    pu_id;
    pu_class;
    pu_quantity = quantity;
    pu_descriptor = descriptor props;
    pu_memory = memory;
    pu_groups = groups;
    pu_children = children;
    pu_interconnects = interconnects;
  }

let platform ~name pf_masters = { pf_name = name; pf_masters }

let find_property d name =
  List.find_opt (fun p -> p.p_name = name) d.d_properties

let property_value d name = Option.map (fun p -> p.p_value) (find_property d name)

let property_int d name =
  Option.bind (property_value d name) int_of_string_opt

let pu_property pu name = property_value pu.pu_descriptor name

let set_property d p =
  if List.exists (fun q -> q.p_name = p.p_name) d.d_properties then
    {
      d_properties =
        List.map (fun q -> if q.p_name = p.p_name then p else q) d.d_properties;
    }
  else { d_properties = d.d_properties @ [ p ] }

let unfixed_properties d = List.filter (fun p -> not p.p_fixed) d.d_properties

let rec fold_pu f acc pu =
  List.fold_left (fold_pu f) (f acc pu) pu.pu_children

let fold f acc pf = List.fold_left (fold_pu f) acc pf.pf_masters
let iter f pf = fold (fun () pu -> f pu) () pf
let all_pus pf = List.rev (fold (fun acc pu -> pu :: acc) [] pf)

let find_pu pf id =
  fold (fun acc pu -> if pu.pu_id = id then Some pu else acc) None pf

let parent_of pf id =
  fold
    (fun acc pu ->
      if List.exists (fun c -> c.pu_id = id) pu.pu_children then Some pu
      else acc)
    None pf

let path_to pf id =
  let rec search trail pu =
    let trail = pu :: trail in
    if pu.pu_id = id then Some (List.rev trail)
    else List.find_map (search trail) pu.pu_children
  in
  match List.find_map (search []) pf.pf_masters with
  | Some path -> path
  | None -> []

let depth pf =
  let rec d pu =
    1 + List.fold_left (fun m c -> max m (d c)) 0 pu.pu_children
  in
  List.fold_left (fun m pu -> max m (d pu)) 0 pf.pf_masters

let pu_count pf = fold (fun n _ -> n + 1) 0 pf

(* A node of quantity q with children c1..cn stands for
   q * (1 + sum(units ci)) physical units. *)
let unit_count pf =
  let rec units pu =
    pu.pu_quantity
    * (1 + List.fold_left (fun acc c -> acc + units c) 0 pu.pu_children)
  in
  List.fold_left (fun acc m -> acc + units m) 0 pf.pf_masters

let by_class cls pf =
  List.rev
    (fold (fun acc pu -> if pu.pu_class = cls then pu :: acc else acc) [] pf)

let workers pf = by_class Worker pf
let masters pf = by_class Master pf
let hybrids pf = by_class Hybrid pf

let groups pf =
  let add acc g = if List.mem g acc then acc else acc @ [ g ] in
  fold (fun acc pu -> List.fold_left add acc pu.pu_groups) [] pf

let group_members pf g =
  List.rev
    (fold
       (fun acc pu -> if List.mem g pu.pu_groups then pu :: acc else acc)
       [] pf)

let all_interconnects pf =
  List.rev
    (fold (fun acc pu -> List.rev_append pu.pu_interconnects acc) [] pf)

let connections_of pf id =
  List.filter
    (fun ic -> ic.ic_from = id || ic.ic_to = id)
    (all_interconnects pf)

let connectivity pf =
  List.map (fun ic -> (ic.ic_from, ic.ic_to, ic)) (all_interconnects pf)

let routes pf src dst =
  let edges = all_interconnects pf in
  let neighbours id =
    List.filter_map
      (fun ic ->
        if ic.ic_from = id then Some ic.ic_to
        else if ic.ic_to = id then Some ic.ic_from
        else None)
      edges
  in
  let rec walk visited id =
    if id = dst then [ [ id ] ]
    else
      neighbours id
      |> List.filter (fun n -> not (List.mem n visited))
      |> List.concat_map (fun n ->
             List.map (fun path -> id :: path) (walk (id :: visited) n))
  in
  if src = dst then [ [ src ] ] else walk [ src ] src

lib/model/machine.pp.mli: Ppx_deriving_runtime

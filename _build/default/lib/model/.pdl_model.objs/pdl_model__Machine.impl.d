lib/model/machine.pp.ml: List Option Ppx_deriving_runtime

lib/model/validate.pp.ml: Format Hashtbl List Machine Printf String

lib/model/validate.pp.mli: Format Machine

(** The hierarchical machine model (paper §III-A).

    A platform is a forest of processing units (PUs) related by
    {e logical control}: an edge from parent to child means the parent
    may delegate computational tasks to the child. PUs come in three
    classes:

    - {e Master}: feature-rich general-purpose PU, a possible program
      entry point. Masters appear only at the top level; several may
      coexist in one system.
    - {e Hybrid}: acts as both controlled and controlling PU. Hybrids
      appear only at inner nodes and must themselves be controlled by
      a Master or another Hybrid.
    - {e Worker}: specialized leaf compute resource; must be
      controlled by a Master or Hybrid.

    Memory regions (MR) attach to PUs; interconnects (IC) describe
    communication facilities between PUs. Both carry extensible
    descriptors made of key/value properties, as do PUs themselves.
    Properties may be typed by a subschema ([xsi:type]) and marked
    [fixed] (hand-written, authoritative) or unfixed (placeholders a
    runtime or tool may instantiate later). *)

type pu_class = Master | Hybrid | Worker [@@deriving show, eq]

val pu_class_to_string : pu_class -> string
(** ["Master"], ["Hybrid"], ["Worker"] — the PDL element names. *)

val pu_class_of_string : string -> pu_class option

type property = {
  p_name : string;
  p_value : string;
  p_unit : string option;  (** e.g. ["kB"] on a value *)
  p_fixed : bool;
  p_schema : string option;
      (** subschema type for polymorphic properties, e.g.
          ["ocl:oclDevicePropertyType"] *)
}
[@@deriving show, eq]

type descriptor = { d_properties : property list } [@@deriving show, eq]

type memory_region = {
  mr_id : string;
  mr_descriptor : descriptor;
}
[@@deriving show, eq]

type interconnect = {
  ic_type : string;  (** e.g. ["rDMA"], ["PCIe"], ["QPI"] *)
  ic_from : string;  (** source PU id *)
  ic_to : string;  (** destination PU id *)
  ic_scheme : string;
  ic_descriptor : descriptor;
}
[@@deriving show, eq]

type pu = {
  pu_id : string;
  pu_class : pu_class;
  pu_quantity : int;
      (** how many identical physical units this node stands for *)
  pu_descriptor : descriptor;
  pu_memory : memory_region list;
  pu_groups : string list;  (** LogicGroupAttribute values *)
  pu_children : pu list;  (** controlled PUs, in document order *)
  pu_interconnects : interconnect list;
      (** interconnects declared at this hierarchy level *)
}
[@@deriving show, eq]

type platform = {
  pf_name : string;
  pf_masters : pu list;
}
[@@deriving show, eq]

(** {1 Constructors} *)

val property :
  ?unit_:string -> ?fixed:bool -> ?schema:string -> string -> string ->
  property
(** [property name value]; [fixed] defaults to [true]. *)

val descriptor : property list -> descriptor
val no_descriptor : descriptor

val memory_region : ?props:property list -> string -> memory_region

val interconnect :
  ?scheme:string -> ?props:property list -> type_:string ->
  from:string -> to_:string -> unit -> interconnect

val pu :
  ?quantity:int ->
  ?props:property list ->
  ?memory:memory_region list ->
  ?groups:string list ->
  ?children:pu list ->
  ?interconnects:interconnect list ->
  pu_class ->
  string ->
  pu
(** [pu cls id] builds a PU node. *)

val platform : name:string -> pu list -> platform

(** {1 Property access} *)

val find_property : descriptor -> string -> property option
val property_value : descriptor -> string -> string option
val property_int : descriptor -> string -> int option
val pu_property : pu -> string -> string option
(** Property lookup on a PU's own descriptor. *)

val set_property : descriptor -> property -> descriptor
(** Replace (by name) or append a property. *)

val unfixed_properties : descriptor -> property list
(** Properties a runtime may still instantiate (paper §III-B). *)

(** {1 Traversal} *)

val fold : ('a -> pu -> 'a) -> 'a -> platform -> 'a
(** Pre-order over every PU of every master tree. *)

val iter : (pu -> unit) -> platform -> unit
val all_pus : platform -> pu list
val find_pu : platform -> string -> pu option
(** Lookup by PU id anywhere in the platform. *)

val parent_of : platform -> string -> pu option
(** The controlling PU of the given id, or [None] for masters. *)

val path_to : platform -> string -> pu list
(** Control chain from a master down to (and including) the PU;
    [[]] when the id is unknown. *)

val depth : platform -> int
(** Height of the deepest control chain (a lone master has depth 1). *)

val pu_count : platform -> int
(** Number of PU {e nodes}. *)

val unit_count : platform -> int
(** Number of physical units: sum over nodes of quantity, where a
    node's multiplicity multiplies its subtree. *)

val workers : platform -> pu list
val masters : platform -> pu list
val hybrids : platform -> pu list

(** {1 Logic groups} *)

val groups : platform -> string list
(** All group names, deduplicated, in first-appearance order. *)

val group_members : platform -> string -> pu list

(** {1 Interconnects} *)

val all_interconnects : platform -> interconnect list
val connections_of : platform -> string -> interconnect list
(** Interconnects with the given PU id as an endpoint. *)

val connectivity :
  platform -> (string * string * interconnect) list
(** Directed edges (from, to, ic). *)

val routes : platform -> string -> string -> string list list
(** All simple paths (as PU-id lists, endpoints included) between two
    PUs over interconnect edges, treating edges as bidirectional.
    Used by the code generator to derive data-transfer paths. *)

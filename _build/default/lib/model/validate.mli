(** Well-formedness of platforms against the machine model rules of
    paper §III-A.

    Checked rules:

    - [Master_below_top]: Master PUs may appear only at the highest
      hierarchical level.
    - [Worker_with_children]: Workers are leaf nodes and cannot
      control other PUs.
    - [Hybrid_without_children]: a Hybrid is an inner node; a childless
      Hybrid should have been a Worker.
    - [Uncontrolled_pu]: Hybrids and Workers must be controlled — the
      platform may not have them as roots.
    - [Duplicate_id]: PU ids are unique platform-wide; memory-region
      ids are unique per PU.
    - [Bad_quantity]: quantities are at least 1.
    - [Dangling_interconnect]: both interconnect endpoints name PUs
      that exist in the platform.
    - [Self_interconnect]: an interconnect may not loop onto a single
      PU.
    - [Empty_platform]: a platform has at least one Master.
    - [Empty_group_name] / [Empty_property_name]: names are non-empty.
*)

type violation =
  | Master_below_top of { id : string; parent : string }
  | Worker_with_children of { id : string }
  | Hybrid_without_children of { id : string }
  | Uncontrolled_pu of { id : string; cls : Machine.pu_class }
  | Duplicate_id of { id : string }
  | Bad_quantity of { id : string; quantity : int }
  | Dangling_interconnect of { from_ : string; to_ : string; missing : string }
  | Self_interconnect of { id : string }
  | Empty_platform
  | Empty_group_name of { id : string }
  | Empty_property_name of { id : string }

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

val check : Machine.platform -> violation list
(** Empty list when the platform is well formed. *)

val is_valid : Machine.platform -> bool

val check_exn : Machine.platform -> Machine.platform
(** Identity on valid platforms.
    @raise Invalid_argument with all violations otherwise. *)

module S = Pdl_xml.Schema

(* PU content is deliberately order-free: hand-written descriptors
   (and the paper's listings) interleave descriptors, workers and
   interconnects freely. *)
let pu_content =
  [
    S.P_choice
      ( [
          S.el "PUDescriptor" "PUDescriptorType";
          S.el "MemoryRegion" "MemoryRegionType";
          S.el "LogicGroupAttribute" "string";
          S.el "Worker" "WorkerType";
          S.el "Hybrid" "HybridType";
          S.el "Interconnect" "InterconnectType";
        ],
        S.many );
  ]

let worker_content =
  [
    S.P_choice
      ( [
          S.el "PUDescriptor" "PUDescriptorType";
          S.el "MemoryRegion" "MemoryRegionType";
          S.el "LogicGroupAttribute" "string";
        ],
        S.many );
  ]

let id_attrs =
  [
    S.attr ~required:true "id" S.S_string;
    S.attr "quantity" (S.S_int { min = Some 1; max = None });
  ]

let core =
  S.make ~id:"pdl-core" ~version:"1.0"
    ~target_ns:"urn:pdl:core"
    ~types:
      [
        S.complex "ValueType" ~text:S.S_string
          ~attrs:[ S.attr "unit" S.S_string ];
        S.complex "PropertyType"
          ~attrs:[ S.attr "fixed" S.S_bool ]
          ~content:[ S.el "name" "string"; S.el "value" "ValueType" ];
        S.complex "PUDescriptorType"
          ~content:[ S.el ~occ:S.many "Property" "PropertyType" ];
        S.complex "MRDescriptorType"
          ~content:[ S.el ~occ:S.many "Property" "PropertyType" ];
        S.complex "ICDescriptorType"
          ~content:[ S.el ~occ:S.many "Property" "PropertyType" ];
        S.complex "MemoryRegionType"
          ~attrs:[ S.attr ~required:true "id" S.S_string ]
          ~content:[ S.el ~occ:S.optional "MRDescriptor" "MRDescriptorType" ];
        S.complex "InterconnectType"
          ~attrs:
            [
              S.attr ~required:true "type" S.S_string;
              S.attr ~required:true "from" S.S_string;
              S.attr ~required:true "to" S.S_string;
              S.attr "scheme" S.S_string;
            ]
          ~content:[ S.el ~occ:S.optional "ICDescriptor" "ICDescriptorType" ];
        S.complex "WorkerType" ~attrs:id_attrs ~content:worker_content;
        S.complex "HybridType" ~attrs:id_attrs ~content:pu_content;
        S.complex "MasterType" ~attrs:id_attrs ~content:pu_content;
        S.complex "PlatformType"
          ~attrs:[ S.attr "name" S.S_string ]
          ~content:[ S.el ~occ:S.at_least_one "Master" "MasterType" ];
      ]
    ~roots:[ ("Platform", "PlatformType"); ("Master", "MasterType") ]
    ()

(* A property subschema: a named PropertyType extension whose
   instances may carry extra attributes.  Instances select it with
   xsi:type, exactly as in the paper's Listing 2. *)
let property_subschema ~schema_id ~type_name ~extra_attrs =
  S.make ~id:schema_id ~version:"1.0"
    ~types:[ S.complex type_name ~base:"PropertyType" ~attrs:extra_attrs ]
    ~roots:[] ()

let ocl =
  property_subschema ~schema_id:"pdl-ocl" ~type_name:"oclDevicePropertyType"
    ~extra_attrs:[]

let cuda =
  property_subschema ~schema_id:"pdl-cuda" ~type_name:"cudaDevicePropertyType"
    ~extra_attrs:[ S.attr "sm" S.S_string ]

let cell =
  property_subschema ~schema_id:"pdl-cell" ~type_name:"cellPropertyType"
    ~extra_attrs:[]

let default_registry =
  let reg = S.registry core in
  List.fold_left
    (fun reg sub ->
      match S.add_subschema reg sub with
      | Ok reg -> reg
      | Error msg -> invalid_arg ("Pdl_schema.default_registry: " ^ msg))
    reg [ ocl; cuda; cell ]

let validate el = S.validate default_registry el

open Pdl_model.Machine

type constr =
  | Prop_eq of string * string
  | Prop_at_least of string * int
  | Prop_exists of string
  | In_group of string
  | Quantity_at_least of int

type t = {
  pat_class : pu_class option;
  pat_constraints : constr list;
  pat_children : t list;
  pat_label : string option;
}

let make ?cls ?(constraints = []) ?(children = []) ?label () =
  {
    pat_class = cls;
    pat_constraints = constraints;
    pat_children = children;
    pat_label = label;
  }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- parsing -------------------------------------------------------- *)

type cursor = { src : string; mutable i : int }

let peek c = if c.i >= String.length c.src then '\000' else c.src.[c.i]

let skip_ws c =
  while peek c = ' ' || peek c = '\t' || peek c = '\n' do
    c.i <- c.i + 1
  done

let eat c ch =
  skip_ws c;
  if peek c = ch then c.i <- c.i + 1
  else fail "expected %C at offset %d in pattern %S" ch c.i c.src

let is_word_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.' || ch = ':' || ch = '/'

let read_word c =
  skip_ws c;
  let start = c.i in
  while is_word_char (peek c) do
    c.i <- c.i + 1
  done;
  if c.i = start then fail "expected a word at offset %d in pattern %S" start c.src;
  String.sub c.src start (c.i - start)

let read_constr c =
  let name = read_word c in
  skip_ws c;
  if name = "quantity" || peek c = '>' then begin
    eat c '>';
    eat c '=';
    let bound = read_word c in
    match int_of_string_opt bound with
    | Some n ->
        if name = "quantity" then Quantity_at_least n else Prop_at_least (name, n)
    | None -> fail "expected an integer after %s>=, found %S" name bound
  end
  else if peek c = '=' then begin
    eat c '=';
    Prop_eq (name, read_word c)
  end
  else Prop_exists name

let rec read_pattern c =
  skip_ws c;
  let cls =
    if peek c = '*' then begin
      c.i <- c.i + 1;
      None
    end
    else
      let w = read_word c in
      match pu_class_of_string w with
      | Some cls -> Some cls
      | None -> fail "unknown PU class %S (use Master, Hybrid, Worker or *)" w
  in
  let constraints =
    skip_ws c;
    if peek c <> '{' then []
    else begin
      eat c '{';
      let rec loop acc =
        skip_ws c;
        let constr =
          if peek c = '#' then begin
            c.i <- c.i + 1;
            In_group (read_word c)
          end
          else read_constr c
        in
        skip_ws c;
        if peek c = ',' then begin
          eat c ',';
          loop (constr :: acc)
        end
        else begin
          eat c '}';
          List.rev (constr :: acc)
        end
      in
      loop []
    end
  in
  (* The label may sit before or after the child list:
     Master@host[Worker] and Master[Worker]@host both parse. *)
  let read_label () =
    skip_ws c;
    if peek c = '@' then begin
      c.i <- c.i + 1;
      Some (read_word c)
    end
    else None
  in
  let label_before = read_label () in
  let children =
    skip_ws c;
    if peek c <> '[' then []
    else begin
      eat c '[';
      let rec loop acc =
        let child = read_pattern c in
        skip_ws c;
        if peek c = ',' then begin
          eat c ',';
          loop (child :: acc)
        end
        else begin
          eat c ']';
          List.rev (child :: acc)
        end
      in
      loop []
    end
  in
  let label =
    match label_before with Some _ -> label_before | None -> read_label ()
  in
  {
    pat_class = cls;
    pat_constraints = constraints;
    pat_children = children;
    pat_label = label;
  }

let parse src =
  let c = { src; i = 0 } in
  let p = read_pattern c in
  skip_ws c;
  if c.i <> String.length src then
    fail "trailing input at offset %d in pattern %S" c.i src;
  p

let parse_result src =
  match parse src with p -> Ok p | exception Parse_error msg -> Error msg

let constr_to_string = function
  | Prop_eq (n, v) -> Printf.sprintf "%s=%s" n v
  | Prop_at_least (n, b) -> Printf.sprintf "%s>=%d" n b
  | Prop_exists n -> n
  | In_group g -> "#" ^ g
  | Quantity_at_least n -> Printf.sprintf "quantity>=%d" n

let rec to_string p =
  let cls = match p.pat_class with Some c -> pu_class_to_string c | None -> "*" in
  let constraints =
    match p.pat_constraints with
    | [] -> ""
    | cs -> "{" ^ String.concat "," (List.map constr_to_string cs) ^ "}"
  in
  let children =
    match p.pat_children with
    | [] -> ""
    | cs -> "[" ^ String.concat "," (List.map to_string cs) ^ "]"
  in
  let label = match p.pat_label with Some l -> "@" ^ l | None -> "" in
  cls ^ constraints ^ children ^ label

(* --- matching ------------------------------------------------------- *)

type binding = (string * pu) list

let constr_holds pu = function
  | Prop_eq (n, v) -> pu_property pu n = Some v
  | Prop_at_least (n, b) -> (
      match Option.bind (pu_property pu n) float_of_string_opt with
      | Some x -> x >= float_of_int b
      | None -> false)
  | Prop_exists n -> pu_property pu n <> None
  | In_group g -> List.mem g pu.pu_groups
  | Quantity_at_least q -> pu.pu_quantity >= q

let rec match_pu pat pu =
  let class_ok =
    match pat.pat_class with Some c -> pu.pu_class = c | None -> true
  in
  if not (class_ok && List.for_all (constr_holds pu) pat.pat_constraints) then
    None
  else
    match match_children pat.pat_children pu.pu_children with
    | None -> None
    | Some child_binding ->
        let own =
          match pat.pat_label with Some l -> [ (l, pu) ] | None -> []
        in
        Some (own @ child_binding)

(* Embed each pattern child into a distinct concrete child, by
   backtracking over the (small) candidate lists. *)
and match_children pats pus =
  match pats with
  | [] -> Some []
  | pat :: rest ->
      let rec try_candidates before = function
        | [] -> None
        | pu :: after -> (
            match match_pu pat pu with
            | Some binding -> (
                match match_children rest (List.rev_append before after) with
                | Some more -> Some (binding @ more)
                | None -> try_candidates (pu :: before) after)
            | None -> try_candidates (pu :: before) after)
      in
      try_candidates [] pus

let matches_pu pat pu = match_pu pat pu <> None

let find_matches pat pf =
  List.filter_map
    (fun pu -> Option.map (fun b -> (pu, b)) (match_pu pat pu))
    (all_pus pf)

let matches pat pf = find_matches pat pf <> []

let rec specificity p =
  1
  + List.length p.pat_constraints
  + List.fold_left (fun acc c -> acc + specificity c) 0 p.pat_children

lib/pdl/pattern.mli: Pdl_model

lib/pdl/codec.ml: List Option Pdl_model Pdl_schema Pdl_xml Printf String

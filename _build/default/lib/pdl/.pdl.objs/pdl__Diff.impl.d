lib/pdl/diff.ml: Format List Option Pdl_model String

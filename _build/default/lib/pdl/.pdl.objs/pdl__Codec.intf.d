lib/pdl/codec.mli: Pdl_model Pdl_xml

lib/pdl/query.mli: Pdl_model

lib/pdl/diff.mli: Format Pdl_model

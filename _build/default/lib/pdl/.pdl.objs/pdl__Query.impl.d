lib/pdl/query.ml: Codec List Option Pdl_model Pdl_xml Printf String

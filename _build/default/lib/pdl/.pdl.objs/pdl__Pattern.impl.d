lib/pdl/pattern.ml: List Option Pdl_model Printf String

lib/pdl/view.mli: Pdl_model

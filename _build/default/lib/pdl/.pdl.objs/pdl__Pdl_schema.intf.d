lib/pdl/pdl_schema.mli: Pdl_xml

lib/pdl/pdl_schema.ml: List Pdl_xml

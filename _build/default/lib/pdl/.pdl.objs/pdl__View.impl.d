lib/pdl/view.ml: Fun List Pdl_model Printf String

open Pdl_model.Machine

type t = { view_name : string; transform : platform -> platform }

let name v = v.view_name
let make view_name transform = { view_name; transform }

let apply v pf =
  let result = v.transform pf in
  match Pdl_model.Validate.check result with
  | [] -> Ok result
  | vs ->
      Error
        (List.map
           (fun viol ->
             Printf.sprintf "view %s: %s" v.view_name
               (Pdl_model.Validate.violation_to_string viol))
           vs)

let apply_exn v pf =
  match apply v pf with
  | Ok pf -> pf
  | Error msgs -> invalid_arg (String.concat "; " msgs)

let compose name views =
  make name (fun pf ->
      List.fold_left (fun pf v -> v.transform pf) pf views)

let identity = make "identity" Fun.id
let rename n = make ("rename:" ^ n) (fun pf -> { pf with pf_name = n })

let restrict_to_group g =
  make
    ("restrict:" ^ g)
    (fun pf ->
      (* Keep a PU when it is in the group or controls one that is;
         controlling ancestors stay for well-formedness. *)
      let rec keep pu =
        if List.mem g pu.pu_groups then Some pu
        else
          match List.filter_map keep pu.pu_children with
          | [] -> None
          | kept -> Some { pu with pu_children = kept }
      in
      let masters = List.filter_map keep pf.pf_masters in
      let surviving =
        List.concat_map
          (fun m -> all_pus (platform ~name:"" [ { m with pu_class = Master } ]))
          masters
        |> List.map (fun pu -> pu.pu_id)
      in
      let prune pu =
        {
          pu with
          pu_interconnects =
            List.filter
              (fun ic ->
                List.mem ic.ic_from surviving && List.mem ic.ic_to surviving)
              pu.pu_interconnects;
        }
      in
      let rec prune_tree pu =
        prune { pu with pu_children = List.map prune_tree pu.pu_children }
      in
      { pf with pf_masters = List.map prune_tree masters })

let drop_pu id =
  make
    ("drop:" ^ id)
    (fun pf ->
      let rec remove pu =
        if pu.pu_id = id then None
        else Some { pu with pu_children = List.filter_map remove pu.pu_children }
      in
      let masters = List.filter_map remove pf.pf_masters in
      let pruned = { pf with pf_masters = masters } in
      let surviving = List.map (fun p -> p.pu_id) (all_pus pruned) in
      let rec prune pu =
        {
          pu with
          pu_children = List.map prune pu.pu_children;
          pu_interconnects =
            List.filter
              (fun ic ->
                List.mem ic.ic_from surviving && List.mem ic.ic_to surviving)
              pu.pu_interconnects;
        }
      in
      { pruned with pf_masters = List.map prune pruned.pf_masters })

let flatten =
  make "flatten" (fun pf ->
      let flatten_master master =
        (* Pre-order collection keeps the paper's document order. *)
        let rec collect pu =
          match pu.pu_class with
          | Worker -> [ { pu with pu_children = [] } ]
          | Hybrid ->
              let kept =
                if pu.pu_descriptor.d_properties <> [] then
                  [ { pu with pu_class = Worker; pu_children = [] } ]
                else []
              in
              kept @ List.concat_map collect pu.pu_children
          | Master -> List.concat_map collect pu.pu_children
        in
        let workers = List.concat_map collect master.pu_children in
        let surviving =
          master.pu_id :: List.map (fun w -> w.pu_id) workers
        in
        let rec all_ics pu =
          pu.pu_interconnects @ List.concat_map all_ics pu.pu_children
        in
        let interconnects =
          List.filter
            (fun ic ->
              List.mem ic.ic_from surviving && List.mem ic.ic_to surviving)
            (all_ics master)
        in
        {
          master with
          pu_children = workers;
          pu_interconnects = interconnects;
        }
      in
      { pf with pf_masters = List.map flatten_master pf.pf_masters })

let promote_hybrids =
  make "promote-hybrids" (fun pf ->
      let promote master =
        let has_hybrid =
          List.exists (fun c -> c.pu_class = Hybrid) master.pu_children
        in
        let direct_workers =
          List.filter (fun c -> c.pu_class = Worker) master.pu_children
        in
        if (not has_hybrid) || direct_workers = [] then master
        else
          let rest =
            List.filter (fun c -> c.pu_class <> Worker) master.pu_children
          in
          let wrapper =
            pu ~children:direct_workers
              ~props:[ property "SYNTHETIC" "true" ]
              Hybrid
              (master.pu_id ^ ".hybrid")
          in
          { master with pu_children = rest @ [ wrapper ] }
      in
      { pf with pf_masters = List.map promote pf.pf_masters })

let regroup ~group ~where =
  make
    ("regroup:" ^ group)
    (fun pf ->
      let rec go pu =
        let pu = { pu with pu_children = List.map go pu.pu_children } in
        if where pu && not (List.mem group pu.pu_groups) then
          { pu with pu_groups = pu.pu_groups @ [ group ] }
        else pu
      in
      { pf with pf_masters = List.map go pf.pf_masters })

let ungroup group =
  make
    ("ungroup:" ^ group)
    (fun pf ->
      let rec go pu =
        {
          pu with
          pu_groups = List.filter (fun g -> g <> group) pu.pu_groups;
          pu_children = List.map go pu.pu_children;
        }
      in
      { pf with pf_masters = List.map go pf.pf_masters })

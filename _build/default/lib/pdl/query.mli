(** The "simple query API" over platform descriptions (paper §IV).

    Cascabel and other tools interrogate platforms through these
    combinators instead of raw XML, shifting "the burden of querying
    complex and platform dependent information away from user-space".

    Predicates compose with {!(&&&)} / {!(|||)}; selections run over
    every PU of a platform. String-based selection ({!select}) routes
    through the {!Pdl_xml.Path} engine over the canonical XML
    rendering, so tools can also query with path expressions. *)

open Pdl_model.Machine

type pred = pu -> bool

val class_is : pu_class -> pred
val is_master : pred
val is_worker : pred
val is_hybrid : pred

val has_property : string -> pred
val property_is : string -> string -> pred
(** Value comparison is exact (case-sensitive). *)

val property_at_least : string -> int -> pred
(** True when the property parses as an integer [>=] the bound. *)

val in_group : string -> pred
val id_is : string -> pred
val quantity_at_least : int -> pred

val architecture_is : string -> pred
(** Matches the [ARCHITECTURE] (or legacy [ARCH]) property,
    case-insensitively. *)

val ( &&& ) : pred -> pred -> pred
val ( ||| ) : pred -> pred -> pred
val not_ : pred -> pred
val any : pred

(** {1 Selection} *)

val pus : ?where:pred -> platform -> pu list
val first : ?where:pred -> platform -> pu option
val count : ?where:pred -> platform -> int
val exists : pred -> platform -> bool

val architectures : platform -> string list
(** Distinct [ARCHITECTURE] values present, in appearance order. *)

val property_values : platform -> string -> (string * string) list
(** [(pu id, value)] for every PU defining the property. *)

val workers_of : platform -> string -> pu list
(** Workers in the control subtree of the given PU id. *)

val controllers_of : platform -> string -> pu list
(** Masters/Hybrids on the control path above the given PU id
    (nearest first). *)

val reachable : platform -> from:string -> string list
(** PU ids reachable from [from] over interconnects (undirected),
    excluding [from] itself, in breadth-first order. *)

val select : platform -> string -> (pu list, string) result
(** Path-expression selection, e.g.
    [select pf "//Worker[@id='1']"]. The platform is rendered to its
    canonical XML and queried with {!Pdl_xml.Path}; resulting PU
    elements are mapped back to model PUs via their [id] attribute.
    Errors on malformed paths or non-PU results. *)

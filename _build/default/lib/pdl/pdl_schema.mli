(** The PDL base schema and its predefined subschemas (paper §III-B).

    The base schema covers the initial specification: [Master],
    [Hybrid], [Worker] with [PUDescriptor], [Interconnect],
    [MemoryRegion] and [LogicGroupAttribute]; [Interconnect] with
    [ICDescriptor]; [MemoryRegion] with [MRDescriptor]; descriptors
    holding [Property] elements; a property being a [name]/[value]
    pair. Values may carry a [unit] attribute (cf. Listing 2) and
    properties a [fixed] flag plus an [xsi:type] subschema type.

    Predefined subschemas mirror the paper's examples: [ocl] (OpenCL
    device properties), [cuda] and [cell] descriptors. Each has a
    unique id and version; vendors add more via
    {!Pdl_xml.Schema.add_subschema}. *)

val core : Pdl_xml.Schema.t
(** Base schema, id ["pdl-core"]. Roots: [Platform] and [Master]. *)

val ocl : Pdl_xml.Schema.t
(** OpenCL property subschema, id ["pdl-ocl"]: [oclDevicePropertyType]
    extending [PropertyType]. *)

val cuda : Pdl_xml.Schema.t
(** Cuda property subschema, id ["pdl-cuda"]. *)

val cell : Pdl_xml.Schema.t
(** Cell B.E. property subschema, id ["pdl-cell"]. *)

val default_registry : Pdl_xml.Schema.registry
(** [core] + all predefined subschemas. *)

val validate : Pdl_xml.Dom.element -> Pdl_xml.Schema.error list
(** Validate a PDL document against {!default_registry}. *)

(** Platform patterns: abstract control-relationship shapes matched
    against concrete platforms (paper §II, §IV-B).

    A pattern is a small PU-hierarchy template. Task implementation
    variants declare the pattern they require (e.g. {e a Master
    controlling at least one GPU Worker}); static pre-selection keeps
    a variant only when its pattern embeds into the target platform's
    PDL description.

    {2 Textual syntax}

    {v
    pattern  ::= class constraints? children? label?
    class    ::= 'Master' | 'Hybrid' | 'Worker' | '*'
    constraints ::= '{' constr (',' constr)* '}'
    constr   ::= NAME '=' VALUE          property equality
               | NAME '>=' INT           integer property bound
               | NAME                    property presence
               | '#' NAME                logic-group membership
               | 'quantity' '>=' INT     physical multiplicity
    children ::= '[' pattern (',' pattern)* ']'
    label    ::= '@' NAME                binding label
    v}

    Example — the Listing 1 system as a pattern:
    [{v Master{ARCHITECTURE=x86}[Worker{ARCHITECTURE=gpu}@gpu] v}]

    Matching is an {e embedding}: every pattern child must match a
    distinct concrete child of the matched PU; concrete children with
    no counterpart are allowed. With [~deep:true] (the default for
    {!find_matches}) the root pattern may match a PU anywhere in the
    hierarchy. *)

open Pdl_model.Machine

type constr =
  | Prop_eq of string * string
  | Prop_at_least of string * int
  | Prop_exists of string
  | In_group of string
  | Quantity_at_least of int

type t = {
  pat_class : pu_class option;  (** [None] is the ['*'] wildcard *)
  pat_constraints : constr list;
  pat_children : t list;
  pat_label : string option;
}

val make :
  ?cls:pu_class -> ?constraints:constr list -> ?children:t list ->
  ?label:string -> unit -> t

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (t, string) result
val to_string : t -> string
(** Prints the textual syntax; [parse (to_string p)] = [p]. *)

type binding = (string * pu) list
(** Label [->] matched PU, for every labelled pattern node. *)

val matches_pu : t -> pu -> bool
(** Does the pattern embed into this PU (pattern root matching the PU
    itself)? *)

val match_pu : t -> pu -> binding option
(** Like {!matches_pu} but returns the label bindings of the first
    embedding found. *)

val matches : t -> platform -> bool
(** Does the pattern embed anywhere in the platform? *)

val find_matches : t -> platform -> (pu * binding) list
(** Every PU at which the pattern root matches, with bindings. *)

val specificity : t -> int
(** A rough specificity score — number of nodes plus constraints —
    used by Cascabel to prefer the most specific matching variant. *)

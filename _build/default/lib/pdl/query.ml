open Pdl_model.Machine

type pred = pu -> bool

let class_is cls pu = pu.pu_class = cls
let is_master = class_is Master
let is_worker = class_is Worker
let is_hybrid = class_is Hybrid
let has_property name pu = pu_property pu name <> None
let property_is name value pu = pu_property pu name = Some value

let property_at_least name bound pu =
  match Option.bind (pu_property pu name) float_of_string_opt with
  | Some n -> n >= float_of_int bound
  | None -> false

let in_group g pu = List.mem g pu.pu_groups
let id_is id pu = pu.pu_id = id
let quantity_at_least q pu = pu.pu_quantity >= q

let architecture_is arch pu =
  let arch = String.lowercase_ascii arch in
  let matches key =
    match pu_property pu key with
    | Some v -> String.lowercase_ascii v = arch
    | None -> false
  in
  matches "ARCHITECTURE" || matches "ARCH"

let ( &&& ) p q pu = p pu && q pu
let ( ||| ) p q pu = p pu || q pu
let not_ p pu = not (p pu)
let any _ = true

let pus ?(where = any) pf = List.filter where (all_pus pf)
let first ?where pf = match pus ?where pf with [] -> None | pu :: _ -> Some pu
let count ?where pf = List.length (pus ?where pf)
let exists p pf = List.exists p (all_pus pf)

let architectures pf =
  let add acc v = if List.mem v acc then acc else acc @ [ v ] in
  List.fold_left
    (fun acc pu ->
      match pu_property pu "ARCHITECTURE" with
      | Some v -> add acc v
      | None -> (
          match pu_property pu "ARCH" with Some v -> add acc v | None -> acc))
    [] (all_pus pf)

let property_values pf name =
  List.filter_map
    (fun pu ->
      Option.map (fun v -> (pu.pu_id, v)) (pu_property pu name))
    (all_pus pf)

let workers_of pf id =
  match find_pu pf id with
  | None -> []
  | Some root ->
      let sub = platform ~name:"" [ { root with pu_class = Master } ] in
      List.filter (fun pu -> pu.pu_class = Worker) (all_pus sub)

let controllers_of pf id =
  match path_to pf id with
  | [] -> []
  | path -> List.rev (List.filter (fun pu -> pu.pu_id <> id) path)

let reachable pf ~from =
  let edges = all_interconnects pf in
  let neighbours id =
    List.filter_map
      (fun ic ->
        if ic.ic_from = id then Some ic.ic_to
        else if ic.ic_to = id then Some ic.ic_from
        else None)
      edges
  in
  let rec bfs visited frontier acc =
    match frontier with
    | [] -> List.rev acc
    | id :: rest ->
        let fresh =
          List.fold_left
            (fun acc n ->
              if List.mem n visited || List.mem n acc then acc else acc @ [ n ])
            [] (neighbours id)
        in
        bfs (fresh @ visited) (rest @ fresh) (List.rev_append fresh acc)
  in
  bfs [ from ] [ from ] []

let select pf path =
  match Pdl_xml.Path.parse path with
  | exception Pdl_xml.Path.Parse_error msg -> Error msg
  | compiled -> (
      let xml = Codec.platform_to_xml ~bare_master:false pf in
      let hits = Pdl_xml.Path.select compiled xml in
      let to_pu (el : Pdl_xml.Dom.element) =
        match
          ( List.mem el.name.local [ "Master"; "Hybrid"; "Worker" ],
            Pdl_xml.Dom.attr el "id" )
        with
        | true, Some id -> (
            match find_pu pf id with
            | Some pu -> Ok pu
            | None -> Error (Printf.sprintf "unknown PU id %S" id))
        | _ ->
            Error
              (Printf.sprintf "path selected a non-PU element <%s>"
                 el.name.local)
      in
      List.fold_left
        (fun acc el ->
          match (acc, to_pu el) with
          | Error e, _ -> Error e
          | Ok pus, Ok pu -> Ok (pus @ [ pu ])
          | Ok _, Error e -> Error e)
        (Ok []) hits)

(** Structural diff and merge of platform descriptions.

    {!diff} compares two platforms PU-by-PU (matched on id) and
    reports additions, removals and property/structure changes —
    useful when regenerating descriptors from probes and reviewing
    what changed.

    {!instantiate} implements the paper's {e unfixed property}
    workflow (§III-B): a descriptor written at program-composition
    time may leave properties unfixed; a runtime or machine-dependent
    library later fills in their values. Instantiation overlays
    values onto unfixed properties only — fixed properties are
    authoritative and never overwritten. *)

open Pdl_model.Machine

type change =
  | Pu_added of string  (** id present only in the newer platform *)
  | Pu_removed of string
  | Class_changed of { id : string; from_ : pu_class; to_ : pu_class }
  | Quantity_changed of { id : string; from_ : int; to_ : int }
  | Property_added of { id : string; name : string }
  | Property_removed of { id : string; name : string }
  | Property_changed of {
      id : string;
      name : string;
      from_ : string;
      to_ : string;
    }
  | Parent_changed of {
      id : string;
      from_ : string option;
      to_ : string option;
    }
  | Group_added of { id : string; group : string }
  | Group_removed of { id : string; group : string }

val pp_change : Format.formatter -> change -> unit
val change_to_string : change -> string

val diff : platform -> platform -> change list
(** [diff old_pf new_pf]. Empty when equivalent (ignoring
    interconnect descriptor internals). *)

val equivalent : platform -> platform -> bool

(** {1 Unfixed-property instantiation} *)

val instantiate :
  values:(string * string * string) list -> platform -> platform
(** [instantiate ~values pf] sets unfixed properties from
    [(pu id, property name, value)] triples. Properties that are
    fixed, missing, or on unknown PUs are left untouched. The
    instantiated property remains unfixed (it may be re-instantiated
    later). *)

val missing_values : platform -> (string * string) list
(** [(pu id, property name)] for every unfixed property whose value
    is empty — what a runtime still has to fill in. *)

val overlay : base:platform -> probe:platform -> platform
(** For every PU id present in both, copy property values measured by
    [probe] onto [base]'s unfixed properties of the same name.
    Fixed properties and structure always come from [base]. *)

open Pdl_model.Machine

type change =
  | Pu_added of string
  | Pu_removed of string
  | Class_changed of { id : string; from_ : pu_class; to_ : pu_class }
  | Quantity_changed of { id : string; from_ : int; to_ : int }
  | Property_added of { id : string; name : string }
  | Property_removed of { id : string; name : string }
  | Property_changed of {
      id : string;
      name : string;
      from_ : string;
      to_ : string;
    }
  | Parent_changed of {
      id : string;
      from_ : string option;
      to_ : string option;
    }
  | Group_added of { id : string; group : string }
  | Group_removed of { id : string; group : string }

let pp_change ppf =
  let opt = function Some s -> s | None -> "<top level>" in
  function
  | Pu_added id -> Format.fprintf ppf "PU %S added" id
  | Pu_removed id -> Format.fprintf ppf "PU %S removed" id
  | Class_changed { id; from_; to_ } ->
      Format.fprintf ppf "PU %S reclassified %s -> %s" id
        (pu_class_to_string from_) (pu_class_to_string to_)
  | Quantity_changed { id; from_; to_ } ->
      Format.fprintf ppf "PU %S quantity %d -> %d" id from_ to_
  | Property_added { id; name } ->
      Format.fprintf ppf "PU %S gained property %S" id name
  | Property_removed { id; name } ->
      Format.fprintf ppf "PU %S lost property %S" id name
  | Property_changed { id; name; from_; to_ } ->
      Format.fprintf ppf "PU %S property %S: %S -> %S" id name from_ to_
  | Parent_changed { id; from_; to_ } ->
      Format.fprintf ppf "PU %S moved from %s to %s" id (opt from_) (opt to_)
  | Group_added { id; group } ->
      Format.fprintf ppf "PU %S joined group %S" id group
  | Group_removed { id; group } ->
      Format.fprintf ppf "PU %S left group %S" id group

let change_to_string c = Format.asprintf "%a" pp_change c

let diff old_pf new_pf =
  let changes = ref [] in
  let report c = changes := c :: !changes in
  let old_pus = all_pus old_pf and new_pus = all_pus new_pf in
  let old_ids = List.map (fun pu -> pu.pu_id) old_pus in
  let new_ids = List.map (fun pu -> pu.pu_id) new_pus in
  List.iter
    (fun id -> if not (List.mem id old_ids) then report (Pu_added id))
    new_ids;
  List.iter
    (fun id -> if not (List.mem id new_ids) then report (Pu_removed id))
    old_ids;
  let parent pf id = Option.map (fun p -> p.pu_id) (parent_of pf id) in
  List.iter
    (fun old_pu ->
      match find_pu new_pf old_pu.pu_id with
      | None -> ()
      | Some new_pu ->
          let id = old_pu.pu_id in
          if old_pu.pu_class <> new_pu.pu_class then
            report
              (Class_changed
                 { id; from_ = old_pu.pu_class; to_ = new_pu.pu_class });
          if old_pu.pu_quantity <> new_pu.pu_quantity then
            report
              (Quantity_changed
                 { id; from_ = old_pu.pu_quantity; to_ = new_pu.pu_quantity });
          let old_parent = parent old_pf id and new_parent = parent new_pf id in
          if old_parent <> new_parent then
            report (Parent_changed { id; from_ = old_parent; to_ = new_parent });
          (* Properties: multiset match exact (name, value, unit,
             fixity, schema) pairs first, then pair leftovers by name
             as changes. Duplicate property names are legal in PDL
             descriptors, so this must not assume name uniqueness. *)
          let remove_first eq x l =
            let rec go acc = function
              | [] -> None
              | y :: rest ->
                  if eq x y then Some (List.rev_append acc rest)
                  else go (y :: acc) rest
            in
            go [] l
          in
          let unmatched_old, unmatched_new =
            List.fold_left
              (fun (uo, un) p ->
                match remove_first equal_property p un with
                | Some un' -> (uo, un')
                | None -> (uo @ [ p ], un))
              ([], new_pu.pu_descriptor.d_properties)
              old_pu.pu_descriptor.d_properties
          in
          let leftovers_new =
            List.fold_left
              (fun un p ->
                match
                  remove_first (fun a b -> a.p_name = b.p_name) p un
                with
                | Some un' ->
                    let q =
                      List.find (fun b -> b.p_name = p.p_name) un
                    in
                    report
                      (Property_changed
                         {
                           id;
                           name = p.p_name;
                           from_ = p.p_value;
                           to_ = q.p_value;
                         });
                    un'
                | None ->
                    report (Property_removed { id; name = p.p_name });
                    un)
              unmatched_new unmatched_old
          in
          List.iter
            (fun q -> report (Property_added { id; name = q.p_name }))
            leftovers_new;
          List.iter
            (fun g ->
              if not (List.mem g new_pu.pu_groups) then
                report (Group_removed { id; group = g }))
            old_pu.pu_groups;
          List.iter
            (fun g ->
              if not (List.mem g old_pu.pu_groups) then
                report (Group_added { id; group = g }))
            new_pu.pu_groups)
    old_pus;
  List.rev !changes

let equivalent a b = diff a b = []

let map_pus f pf =
  let rec go pu = f { pu with pu_children = List.map go pu.pu_children } in
  { pf with pf_masters = List.map go pf.pf_masters }

let instantiate ~values pf =
  map_pus
    (fun pu ->
      let props =
        List.map
          (fun p ->
            if p.p_fixed then p
            else
              match
                List.find_opt
                  (fun (id, name, _) -> id = pu.pu_id && name = p.p_name)
                  values
              with
              | Some (_, _, v) -> { p with p_value = v }
              | None -> p)
          pu.pu_descriptor.d_properties
      in
      { pu with pu_descriptor = descriptor props })
    pf

let missing_values pf =
  List.concat_map
    (fun pu ->
      List.filter_map
        (fun p ->
          if (not p.p_fixed) && String.trim p.p_value = "" then
            Some (pu.pu_id, p.p_name)
          else None)
        pu.pu_descriptor.d_properties)
    (all_pus pf)

let overlay ~base ~probe =
  let values =
    List.concat_map
      (fun pu ->
        List.map
          (fun p -> (pu.pu_id, p.p_name, p.p_value))
          pu.pu_descriptor.d_properties)
      (all_pus probe)
  in
  instantiate ~values base

(** Logical platform views (paper §II).

    "Multiple logic platform patterns can co-exist for a single target
    system": the same physical hardware can be presented, say, as a
    flat Master/Worker pool to one programming model and as a deep
    Master/Hybrid/Worker hierarchy to another. A view is a named,
    composable transformation from one platform description to
    another; {!apply} checks that the result is still well formed. *)

open Pdl_model.Machine

type t
(** A named platform transformation. *)

val name : t -> string
val make : string -> (platform -> platform) -> t

val apply : t -> platform -> (platform, string list) result
(** Runs the transformation, then {!Pdl_model.Validate.check}s the
    result; violations are returned as messages prefixed with the
    view name. *)

val apply_exn : t -> platform -> platform

val compose : string -> t list -> t
(** Left-to-right composition under a new name. *)

(** {1 Prefabricated views} *)

val identity : t

val rename : string -> t
(** Set the platform name. *)

val restrict_to_group : string -> t
(** Keep only PUs in the group (and their controlling ancestors,
    which are needed for well-formedness). Interconnects with a
    dropped endpoint are removed. *)

val drop_pu : string -> t
(** Remove the PU with the given id (with its subtree). *)

val flatten : t
(** Collapse Hybrid levels: every Worker is re-attached directly
    under its top-level Master, yielding the flat Master/Worker view
    used by host-device programming models (OpenCL-style). Hybrids
    themselves become Workers when they carried a descriptor worth
    preserving, otherwise they disappear. *)

val promote_hybrids : t
(** The inverse presentation bias: Workers directly under a Master
    that also controls Hybrids are wrapped into a synthetic Hybrid,
    producing a uniform two-level control hierarchy. *)

val regroup : group:string -> where:(pu -> bool) -> t
(** Add all matching PUs to a logic group. *)

val ungroup : string -> t
(** Remove the group from every PU. *)

lib/minic/annot.pp.mli: Ast

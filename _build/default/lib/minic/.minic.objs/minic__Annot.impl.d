lib/minic/annot.pp.ml: Ast Buffer List Printf String

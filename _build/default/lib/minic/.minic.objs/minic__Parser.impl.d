lib/minic/parser.pp.ml: Annot Array Ast Lexer List Option Printf Result String Token

lib/minic/lexer.pp.mli: Ast Token

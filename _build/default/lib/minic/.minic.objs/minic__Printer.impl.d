lib/minic/printer.pp.ml: Annot Ast List Option Printf String

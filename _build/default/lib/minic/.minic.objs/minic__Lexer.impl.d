lib/minic/lexer.pp.ml: Ast Buffer Char List Printf String Token

lib/minic/printer.pp.mli: Ast

lib/minic/token.pp.ml: List Printf

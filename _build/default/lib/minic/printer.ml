open Ast

let rec type_to_string = function
  | Void -> "void"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Float -> "float"
  | Double -> "double"
  | Unsigned t -> "unsigned " ^ type_to_string t
  | Pointer t -> type_to_string t ^ "*"
  | Array (t, _) -> type_to_string t ^ "[]"
  | Struct_ref name -> "struct " ^ name
  | Named name -> name

(* Operator precedence, mirroring the parser's levels.  Higher binds
   tighter. *)
let binop_prec = function
  | Or -> 3
  | And -> 4
  | Bit_or -> 5
  | Bit_xor -> 6
  | Bit_and -> 7
  | Eq | Neq -> 8
  | Lt | Gt | Le | Ge -> 9
  | Shl | Shr -> 10
  | Add | Sub -> 11
  | Mul | Div | Mod -> 12

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Bit_and -> "&" | Bit_or -> "|" | Bit_xor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_to_string = function
  | Neg -> "-" | Pos -> "+" | Not -> "!" | Bit_not -> "~"
  | Deref -> "*" | Addr -> "&" | Pre_inc -> "++" | Pre_dec -> "--"

let rec expr_prec = function
  | Comma _ -> 0
  | Assign _ -> 1
  | Ternary _ -> 2
  | Binary (op, _, _) -> binop_prec op
  | Unary _ | Cast _ | Sizeof_type _ | Sizeof_expr _ -> 13
  | Post_inc _ | Post_dec _ | Call _ | Index _ | Member _ | Arrow _ -> 14
  | Int_lit _ | Float_lit _ | Char_lit _ | String_lit _ | Ident _ -> 15

and print_expr ~min_prec e =
  let body =
    match e with
    | Int_lit s | Float_lit s -> s
    | Char_lit s -> Printf.sprintf "'%s'" s
    | String_lit s -> Printf.sprintf "\"%s\"" (escape_string s)
    | Ident s -> s
    | Call (f, args) ->
        Printf.sprintf "%s(%s)"
          (print_expr ~min_prec:14 f)
          (String.concat ", " (List.map (print_expr ~min_prec:1) args))
    | Index (a, i) ->
        Printf.sprintf "%s[%s]" (print_expr ~min_prec:14 a)
          (print_expr ~min_prec:0 i)
    | Member (e, f) -> Printf.sprintf "%s.%s" (print_expr ~min_prec:14 e) f
    | Arrow (e, f) -> Printf.sprintf "%s->%s" (print_expr ~min_prec:14 e) f
    | Unary (op, e) ->
        (* Avoid gluing "- -x" into "--x". *)
        let operand = print_expr ~min_prec:13 e in
        let sep =
          match (op, e) with
          | (Neg | Pre_dec), (Unary ((Neg | Pre_dec), _) | Int_lit _) when operand.[0] = '-' -> " "
          | (Pos | Pre_inc), Unary ((Pos | Pre_inc), _) -> " "
          | _ -> ""
        in
        unop_to_string op ^ sep ^ operand
    | Post_inc e -> print_expr ~min_prec:14 e ^ "++"
    | Post_dec e -> print_expr ~min_prec:14 e ^ "--"
    | Binary (op, a, b) ->
        let p = binop_prec op in
        (* left-assoc: left child same level, right child one higher *)
        Printf.sprintf "%s %s %s" (print_expr ~min_prec:p a)
          (binop_to_string op)
          (print_expr ~min_prec:(p + 1) b)
    | Assign (op, lhs, rhs) ->
        Printf.sprintf "%s %s= %s" (print_expr ~min_prec:14 lhs)
          (Option.value ~default:"" op)
          (print_expr ~min_prec:1 rhs)
    | Ternary (c, t, f) ->
        Printf.sprintf "%s ? %s : %s" (print_expr ~min_prec:3 c)
          (print_expr ~min_prec:1 t) (print_expr ~min_prec:1 f)
    | Cast (ty, e) ->
        Printf.sprintf "(%s)%s" (type_to_string ty) (print_expr ~min_prec:13 e)
    | Sizeof_type ty -> Printf.sprintf "sizeof(%s)" (type_to_string ty)
    | Sizeof_expr e -> Printf.sprintf "sizeof %s" (print_expr ~min_prec:13 e)
    | Comma (a, b) ->
        Printf.sprintf "%s, %s" (print_expr ~min_prec:1 a)
          (print_expr ~min_prec:0 b)
  in
  if expr_prec e < min_prec then "(" ^ body ^ ")" else body

and escape_string s =
  (* The lexer kept escape sequences verbatim, so re-emission is
     byte-for-byte. *)
  s

let expr_to_string e = print_expr ~min_prec:0 e

let rec peel_arrays ty =
  match ty with
  | Array (inner, size) ->
      let base, dims = peel_arrays inner in
      let dim =
        match size with
        | Some e -> Printf.sprintf "[%s]" (expr_to_string e)
        | None -> "[]"
      in
      (base, dim :: dims)
  | _ -> (ty, [])

let declaration_to_string ty name =
  let base, dims = peel_arrays ty in
  Printf.sprintf "%s %s%s" (type_to_string base) name (String.concat "" dims)

let declarator_to_string d =
  let decl = declaration_to_string d.d_type d.d_name in
  match d.d_init with
  | Some e -> Printf.sprintf "%s = %s" decl (print_expr ~min_prec:1 e)
  | None -> decl

(* For a declarator list, the base type prints once; array/pointer
   parts print per name. We print each declarator fully and join base
   repetitions only when identical, keeping it simple: one decl per
   statement is how Cascabel emits code anyway. *)
let decl_list_to_string decls =
  match decls with
  | [] -> ";"
  | [ d ] -> declarator_to_string d ^ ";"
  | d :: rest ->
      (* Multi-declarator lists share a base type: print names with
         their suffixes relative to the common base. *)
      let base, _ = peel_arrays d.d_type in
      let base_str =
        match base with
        | Pointer _ ->
            (* mixed pointer lists degrade to separate statements *)
            ""
        | _ -> type_to_string base
      in
      if base_str = "" then
        String.concat " " (List.map (fun d -> declarator_to_string d ^ ";") decls)
      else
        let one d =
          let b, dims = peel_arrays d.d_type in
          let stars =
            let rec count = function Pointer t -> 1 + count t | _ -> 0 in
            String.make (count b) '*'
          in
          stars ^ d.d_name ^ String.concat "" dims
          ^ match d.d_init with
            | Some e -> " = " ^ print_expr ~min_prec:1 e
            | None -> ""
        in
        base_str ^ " " ^ String.concat ", " (one d :: List.map one rest) ^ ";"

let indent_str n = String.make (2 * n) ' '

let rec stmt_lines ~indent s =
  let pad = indent_str indent in
  match s with
  | Expr_stmt None -> [ pad ^ ";" ]
  | Expr_stmt (Some e) -> [ pad ^ expr_to_string e ^ ";" ]
  | Decl_stmt decls -> [ pad ^ decl_list_to_string decls ]
  | Block stmts ->
      (pad ^ "{")
      :: List.concat_map (stmt_lines ~indent:(indent + 1)) stmts
      @ [ pad ^ "}" ]
  | If (cond, then_, else_) -> (
      let head = Printf.sprintf "%sif (%s)" pad (expr_to_string cond) in
      let then_lines = block_or_single ~indent then_ in
      let else_lines =
        match else_ with
        | None -> []
        | Some e -> (pad ^ "else") :: block_or_single ~indent e
      in
      (head :: then_lines) @ else_lines)
  | While (cond, body) ->
      (Printf.sprintf "%swhile (%s)" pad (expr_to_string cond))
      :: block_or_single ~indent body
  | Do_while (body, cond) ->
      ((pad ^ "do") :: block_or_single ~indent body)
      @ [ Printf.sprintf "%swhile (%s);" pad (expr_to_string cond) ]
  | For (init, cond, step, body) ->
      let init_str =
        match init with
        | None -> ""
        | Some (For_expr e) -> expr_to_string e
        | Some (For_decl ds) ->
            let s = decl_list_to_string ds in
            String.sub s 0 (String.length s - 1) (* drop trailing ';' *)
      in
      let cond_str = Option.fold ~none:"" ~some:expr_to_string cond in
      let step_str = Option.fold ~none:"" ~some:expr_to_string step in
      (Printf.sprintf "%sfor (%s; %s; %s)" pad init_str cond_str step_str)
      :: block_or_single ~indent body
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Break -> [ pad ^ "break;" ]
  | Continue -> [ pad ^ "continue;" ]
  | Pragma_stmt (p, s) ->
      (Printf.sprintf "%s#pragma %s" pad (Annot.to_string p))
      :: stmt_lines ~indent s

and block_or_single ~indent s =
  match s with
  | Block _ -> stmt_lines ~indent s
  | _ -> stmt_lines ~indent:(indent + 1) s

let stmt_to_string ?(indent = 0) s = String.concat "\n" (stmt_lines ~indent s)

let params_to_string params =
  if params = [] then "void"
  else
    String.concat ", "
      (List.map (fun p -> declaration_to_string p.p_type p.p_name) params)

let func_to_string f =
  let pragma =
    match f.f_task with
    | Some t -> Printf.sprintf "#pragma %s\n" (Annot.task_to_string t)
    | None -> ""
  in
  let head =
    Printf.sprintf "%s %s(%s)" (type_to_string f.f_return) f.f_name
      (params_to_string f.f_params)
  in
  match f.f_body with
  | None -> pragma ^ head ^ ";"
  | Some body ->
      pragma ^ head ^ "\n"
      ^ String.concat "\n" (stmt_lines ~indent:0 (Block body))

let top_to_string = function
  | Func f -> func_to_string f
  | Global decls -> decl_list_to_string decls
  | Typedef (name, ty) ->
      Printf.sprintf "typedef %s %s;" (type_to_string ty) name
  | Include line | Define line -> line

let unit_to_string unit_ =
  String.concat "\n\n" (List.map top_to_string unit_) ^ "\n"

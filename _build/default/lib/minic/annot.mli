(** Parsing of [#pragma cascabel] annotation bodies (paper §IV-A).

    Syntax, as in the paper:

    {v
    #pragma cascabel task
        : targetplatformlist        (comma-separated)
        : taskidentifier
        : taskname
        : (param : access, ...)     access in {read, write, readwrite}

    #pragma cascabel execute taskidentifier
        : executiongroup
        (param : BLOCK|CYCLIC|BLOCKCYCLIC [: size], ...)
    v}

    The lexer folds continuation lines, so a body arrives as a single
    string. *)

exception Error of string

val parse : string -> Ast.pragma
(** Parse a pragma body (the text after [#pragma]). Bodies not
    starting with [cascabel] raise — the caller filters.
    @raise Error on malformed cascabel annotations. *)

val is_cascabel : string -> bool

val task_to_string : Ast.task_annot -> string
(** Render back to canonical single-line pragma body form. *)

val exec_to_string : Ast.exec_annot -> string
val to_string : Ast.pragma -> string

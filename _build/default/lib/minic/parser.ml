open Ast

type error = { message : string; line : int; col : int }

exception Error of error

let error_to_string e =
  Printf.sprintf "%s at line %d, column %d" e.message e.line e.col

type state = {
  tokens : (Token.t * Ast.pos) array;
  mutable i : int;
  mutable typedefs : string list;
}

let current st = fst st.tokens.(st.i)
let pos st = snd st.tokens.(st.i)

let fail st fmt =
  let p = pos st in
  Printf.ksprintf
    (fun message -> raise (Error { message; line = p.line; col = p.col }))
    fmt

let advance st = if st.i < Array.length st.tokens - 1 then st.i <- st.i + 1

let eat_punct st p =
  match current st with
  | Token.Punct q when q = p -> advance st
  | tok -> fail st "expected %S, found %S" p (Token.to_string tok)

let eat_keyword st k =
  match current st with
  | Token.Keyword q when q = k -> advance st
  | tok -> fail st "expected %S, found %S" k (Token.to_string tok)

let is_punct st p = match current st with Token.Punct q -> q = p | _ -> false
let is_keyword st k = match current st with Token.Keyword q -> q = k | _ -> false

let eat_ident st =
  match current st with
  | Token.Ident name ->
      advance st;
      name
  | tok -> fail st "expected an identifier, found %S" (Token.to_string tok)

(* --- types ------------------------------------------------------------ *)

let type_keywords =
  [ "void"; "char"; "short"; "int"; "long"; "float"; "double"; "unsigned";
    "signed"; "struct"; "union"; "enum" ]

let qualifier_keywords = [ "const"; "static"; "extern" ]

let rec skip_qualifiers st =
  match current st with
  | Token.Keyword k when List.mem k qualifier_keywords ->
      advance st;
      skip_qualifiers st
  | _ -> ()

let starts_type st =
  match current st with
  | Token.Keyword k -> List.mem k type_keywords || List.mem k qualifier_keywords
  | Token.Ident name -> List.mem name st.typedefs
  | _ -> false

(* Base type: one or more specifier keywords, or a typedef name. *)
let parse_base_type st =
  skip_qualifiers st;
  match current st with
  | Token.Ident name when List.mem name st.typedefs ->
      advance st;
      Named name
  | Token.Keyword ("struct" | "union" | "enum") ->
      advance st;
      let name = eat_ident st in
      Struct_ref name
  | Token.Keyword _ ->
      let rec collect acc =
        match current st with
        | Token.Keyword k when List.mem k type_keywords ->
            advance st;
            collect (k :: acc)
        | Token.Keyword k when List.mem k qualifier_keywords ->
            advance st;
            collect acc
        | _ -> List.rev acc
      in
      let specs = collect [] in
      if specs = [] then fail st "expected a type";
      let unsigned = List.mem "unsigned" specs in
      let specs = List.filter (fun s -> s <> "unsigned" && s <> "signed") specs in
      let base =
        match specs with
        | [ "void" ] -> Void
        | [ "char" ] -> Char
        | [ "short" ] | [ "short"; "int" ] -> Short
        | [] | [ "int" ] -> Int
        | [ "long" ] | [ "long"; "int" ] | [ "long"; "long" ]
        | [ "long"; "long"; "int" ] ->
            Long
        | [ "float" ] -> Float
        | [ "double" ] | [ "long"; "double" ] -> Double
        | _ -> fail st "unsupported type specifiers: %s" (String.concat " " specs)
      in
      if unsigned then Unsigned base else base
  | tok -> fail st "expected a type, found %S" (Token.to_string tok)

let parse_pointers st base =
  let ty = ref base in
  while is_punct st "*" do
    advance st;
    skip_qualifiers st;
    ty := Pointer !ty
  done;
  !ty

(* --- expressions -------------------------------------------------------- *)

let rec parse_expr_top st = parse_comma st

and parse_comma st =
  let e = parse_assign st in
  if is_punct st "," then begin
    advance st;
    Comma (e, parse_comma st)
  end
  else e

and parse_assign st =
  let lhs = parse_ternary st in
  let op =
    match current st with
    | Token.Punct "=" -> Some None
    | Token.Punct ("+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" |
                   "<<=" | ">>=" as p) ->
        Some (Some (String.sub p 0 (String.length p - 1)))
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Assign (op, lhs, parse_assign st)
  | None -> lhs

and parse_ternary st =
  let cond = parse_binary st 0 in
  if is_punct st "?" then begin
    advance st;
    let then_ = parse_assign st in
    eat_punct st ":";
    let else_ = parse_assign st in
    Ternary (cond, then_, else_)
  end
  else cond

(* precedence-climbing over binary operators *)
and binop_levels =
  [
    [ ("||", Or) ];
    [ ("&&", And) ];
    [ ("|", Bit_or) ];
    [ ("^", Bit_xor) ];
    [ ("&", Bit_and) ];
    [ ("==", Eq); ("!=", Neq) ];
    [ ("<", Lt); (">", Gt); ("<=", Le); (">=", Ge) ];
    [ ("<<", Shl); (">>", Shr) ];
    [ ("+", Add); ("-", Sub) ];
    [ ("*", Mul); ("/", Div); ("%", Mod) ];
  ]

and parse_binary st level =
  if level >= List.length binop_levels then parse_unary st
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match current st with
      | Token.Punct p when List.mem_assoc p ops ->
          advance st;
          let rhs = parse_binary st (level + 1) in
          lhs := Binary (List.assoc p ops, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  match current st with
  | Token.Punct "-" ->
      advance st;
      Unary (Neg, parse_unary st)
  | Token.Punct "+" ->
      advance st;
      Unary (Pos, parse_unary st)
  | Token.Punct "!" ->
      advance st;
      Unary (Not, parse_unary st)
  | Token.Punct "~" ->
      advance st;
      Unary (Bit_not, parse_unary st)
  | Token.Punct "*" ->
      advance st;
      Unary (Deref, parse_unary st)
  | Token.Punct "&" ->
      advance st;
      Unary (Addr, parse_unary st)
  | Token.Punct "++" ->
      advance st;
      Unary (Pre_inc, parse_unary st)
  | Token.Punct "--" ->
      advance st;
      Unary (Pre_dec, parse_unary st)
  | Token.Keyword "sizeof" ->
      advance st;
      if is_punct st "(" && starts_type_at st (st.i + 1) then begin
        eat_punct st "(";
        let base = parse_base_type st in
        let ty = parse_pointers st base in
        eat_punct st ")";
        Sizeof_type ty
      end
      else Sizeof_expr (parse_unary st)
  | Token.Punct "(" when starts_type_at st (st.i + 1) ->
      eat_punct st "(";
      let base = parse_base_type st in
      let ty = parse_pointers st base in
      eat_punct st ")";
      Cast (ty, parse_unary st)
  | _ -> parse_postfix st

and starts_type_at st i =
  match fst st.tokens.(i) with
  | Token.Keyword k -> List.mem k type_keywords || List.mem k qualifier_keywords
  | Token.Ident name -> List.mem name st.typedefs
  | _ -> false

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match current st with
    | Token.Punct "(" ->
        advance st;
        let args =
          if is_punct st ")" then []
          else begin
            let rec args acc =
              let a = parse_assign st in
              if is_punct st "," then begin
                advance st;
                args (a :: acc)
              end
              else List.rev (a :: acc)
            in
            args []
          end
        in
        eat_punct st ")";
        e := Call (!e, args)
    | Token.Punct "[" ->
        advance st;
        let idx = parse_expr_top st in
        eat_punct st "]";
        e := Index (!e, idx)
    | Token.Punct "." ->
        advance st;
        e := Member (!e, eat_ident st)
    | Token.Punct "->" ->
        advance st;
        e := Arrow (!e, eat_ident st)
    | Token.Punct "++" ->
        advance st;
        e := Post_inc !e
    | Token.Punct "--" ->
        advance st;
        e := Post_dec !e
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match current st with
  | Token.Int_lit s ->
      advance st;
      Int_lit s
  | Token.Float_lit s ->
      advance st;
      Float_lit s
  | Token.Char_lit s ->
      advance st;
      Char_lit s
  | Token.String_lit s ->
      advance st;
      String_lit s
  | Token.Ident name ->
      advance st;
      Ident name
  | Token.Punct "(" ->
      advance st;
      let e = parse_expr_top st in
      eat_punct st ")";
      e
  | tok -> fail st "expected an expression, found %S" (Token.to_string tok)

(* --- declarations -------------------------------------------------------- *)

(* declarator: '*'* name ('[' expr? ']')*, with optional initializer *)
and parse_declarator st base =
  let ty = parse_pointers st base in
  let name = eat_ident st in
  let ty = ref ty in
  (* Array suffixes bind outside-in: int a[2][3] is array of arrays. *)
  let rec arrays () =
    if is_punct st "[" then begin
      advance st;
      let size = if is_punct st "]" then None else Some (parse_assign st) in
      eat_punct st "]";
      arrays ();
      ty := Array (!ty, size)
    end
  in
  arrays ();
  let init =
    if is_punct st "=" then begin
      advance st;
      Some (parse_assign st)
    end
    else None
  in
  { d_name = name; d_type = !ty; d_init = init }

and parse_declarator_list st base =
  let rec loop acc =
    let d = parse_declarator st base in
    if is_punct st "," then begin
      advance st;
      loop (d :: acc)
    end
    else List.rev (d :: acc)
  in
  loop []

(* --- statements ---------------------------------------------------------- *)

let rec parse_stmt st =
  match current st with
  | Token.Pragma body when Annot.is_cascabel body -> (
      advance st;
      match Annot.parse body with
      | Execute_pragma _ as p -> Pragma_stmt (p, parse_stmt st)
      | Task_pragma _ ->
          fail st "task pragmas belong before function definitions"
      | exception Annot.Error msg -> fail st "bad cascabel pragma: %s" msg)
  | Token.Pragma _ ->
      (* Foreign pragmas are skipped. *)
      advance st;
      parse_stmt st
  | Token.Punct "{" ->
      advance st;
      let rec items acc =
        if is_punct st "}" then begin
          advance st;
          List.rev acc
        end
        else items (parse_stmt st :: acc)
      in
      Block (items [])
  | Token.Punct ";" ->
      advance st;
      Expr_stmt None
  | Token.Keyword "if" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr_top st in
      eat_punct st ")";
      let then_ = parse_stmt st in
      let else_ =
        if is_keyword st "else" then begin
          advance st;
          Some (parse_stmt st)
        end
        else None
      in
      If (cond, then_, else_)
  | Token.Keyword "while" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr_top st in
      eat_punct st ")";
      While (cond, parse_stmt st)
  | Token.Keyword "do" ->
      advance st;
      let body = parse_stmt st in
      eat_keyword st "while";
      eat_punct st "(";
      let cond = parse_expr_top st in
      eat_punct st ")";
      eat_punct st ";";
      Do_while (body, cond)
  | Token.Keyword "for" ->
      advance st;
      eat_punct st "(";
      let init =
        if is_punct st ";" then None
        else if starts_type st then begin
          let base = parse_base_type st in
          Some (For_decl (parse_declarator_list st base))
        end
        else Some (For_expr (parse_expr_top st))
      in
      eat_punct st ";";
      let cond = if is_punct st ";" then None else Some (parse_expr_top st) in
      eat_punct st ";";
      let step = if is_punct st ")" then None else Some (parse_expr_top st) in
      eat_punct st ")";
      For (init, cond, step, parse_stmt st)
  | Token.Keyword "return" ->
      advance st;
      let e = if is_punct st ";" then None else Some (parse_expr_top st) in
      eat_punct st ";";
      Return e
  | Token.Keyword "break" ->
      advance st;
      eat_punct st ";";
      Break
  | Token.Keyword "continue" ->
      advance st;
      eat_punct st ";";
      Continue
  | _ when starts_type st ->
      let base = parse_base_type st in
      let decls = parse_declarator_list st base in
      eat_punct st ";";
      Decl_stmt decls
  | _ ->
      let e = parse_expr_top st in
      eat_punct st ";";
      Expr_stmt (Some e)

(* --- top level ------------------------------------------------------------ *)

let parse_params st =
  eat_punct st "(";
  if is_punct st ")" then begin
    advance st;
    []
  end
  else if is_keyword st "void" && fst st.tokens.(st.i + 1) = Token.Punct ")" then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let base = parse_base_type st in
      let ty = parse_pointers st base in
      let name = eat_ident st in
      let ty = ref ty in
      let rec arrays () =
        if is_punct st "[" then begin
          advance st;
          let size = if is_punct st "]" then None else Some (parse_assign st) in
          eat_punct st "]";
          arrays ();
          ty := Array (!ty, size)
        end
      in
      arrays ();
      let p = { p_name = name; p_type = !ty } in
      if is_punct st "," then begin
        advance st;
        loop (p :: acc)
      end
      else begin
        eat_punct st ")";
        List.rev (p :: acc)
      end
    in
    loop []
  end

let parse_unit st =
  let items = ref [] in
  let pending_task = ref None in
  let attach_or_fail () =
    if !pending_task <> None then
      fail st "task pragma not followed by a function definition"
  in
  let rec loop () =
    match current st with
    | Token.EOF -> attach_or_fail ()
    | Token.Hash_line line ->
        attach_or_fail ();
        advance st;
        let item =
          if String.length line >= 8 && String.sub line 0 8 = "#include" then
            Include line
          else Define line
        in
        items := item :: !items;
        loop ()
    | Token.Pragma body when Annot.is_cascabel body -> (
        advance st;
        match Annot.parse body with
        | Task_pragma t ->
            if !pending_task <> None then
              fail st "two task pragmas before one function";
            pending_task := Some t;
            loop ()
        | Execute_pragma _ ->
            fail st "execute pragmas belong inside function bodies"
        | exception Annot.Error msg -> fail st "bad cascabel pragma: %s" msg)
    | Token.Pragma _ ->
        advance st;
        loop ()
    | Token.Keyword "typedef" ->
        attach_or_fail ();
        advance st;
        let base = parse_base_type st in
        let ty = parse_pointers st base in
        let name = eat_ident st in
        eat_punct st ";";
        st.typedefs <- name :: st.typedefs;
        items := Typedef (name, ty) :: !items;
        loop ()
    | _ when starts_type st ->
        let base = parse_base_type st in
        let ty = parse_pointers st base in
        let name = eat_ident st in
        if is_punct st "(" then begin
          (* function definition or prototype *)
          let params = parse_params st in
          let body =
            if is_punct st "{" then begin
              match parse_stmt st with
              | Block stmts -> Some stmts
              | _ -> assert false
            end
            else begin
              eat_punct st ";";
              None
            end
          in
          let task = !pending_task in
          pending_task := None;
          if task <> None && body = None then
            fail st "task pragma on a prototype; a definition is required";
          items :=
            Func
              {
                f_name = name;
                f_return = ty;
                f_params = params;
                f_body = body;
                f_task = task;
              }
            :: !items;
          loop ()
        end
        else begin
          attach_or_fail ();
          (* global declaration; first declarator already started *)
          let ty = ref ty in
          let rec arrays () =
            if is_punct st "[" then begin
              advance st;
              let size =
                if is_punct st "]" then None else Some (parse_assign st)
              in
              eat_punct st "]";
              arrays ();
              ty := Array (!ty, size)
            end
          in
          arrays ();
          let init =
            if is_punct st "=" then begin
              advance st;
              Some (parse_assign st)
            end
            else None
          in
          let first = { d_name = name; d_type = !ty; d_init = init } in
          let rest =
            if is_punct st "," then begin
              advance st;
              parse_declarator_list st base
            end
            else []
          in
          eat_punct st ";";
          items := Global (first :: rest) :: !items;
          loop ()
        end
    | tok -> fail st "unexpected %S at top level" (Token.to_string tok)
  in
  loop ();
  List.rev !items

let make_state src =
  { tokens = Array.of_list (Lexer.tokenize src); i = 0; typedefs = [] }

let parse_exn src =
  match make_state src with
  | st -> parse_unit st
  | exception Lexer.Error e ->
      raise (Error { message = e.message; line = e.line; col = e.col })

let parse src =
  match parse_exn src with
  | unit_ -> Ok unit_
  | exception Error e -> Result.Error e

let parse_expr src =
  match make_state src with
  | st -> (
      match parse_expr_top st with
      | e when current st = Token.EOF -> Ok e
      | _ ->
          Result.Error
            { message = "trailing tokens after expression"; line = 0; col = 0 }
      | exception Error e -> Result.Error e)
  | exception Lexer.Error e ->
      Result.Error { message = e.message; line = e.line; col = e.col }

let tasks unit_ =
  List.filter_map
    (function Func f when f.f_task <> None -> Some f | _ -> None)
    unit_

let executes unit_ =
  let found = ref [] in
  let rec in_stmt = function
    | Pragma_stmt (Execute_pragma e, s) ->
        found := (e, s) :: !found;
        in_stmt s
    | Pragma_stmt (Task_pragma _, s) -> in_stmt s
    | Block ss -> List.iter in_stmt ss
    | If (_, a, b) ->
        in_stmt a;
        Option.iter in_stmt b
    | While (_, s) | Do_while (s, _) | For (_, _, _, s) -> in_stmt s
    | Expr_stmt _ | Decl_stmt _ | Return _ | Break | Continue -> ()
  in
  List.iter
    (function
      | Func { f_body = Some body; _ } -> List.iter in_stmt body
      | _ -> ())
    unit_;
  List.rev !found

(** Recursive-descent parser for the C subset.

    Handles the constructs Cascabel programs use: function
    definitions and prototypes, global and local declarations with
    initializers, typedefs, structs (as opaque named types), the full
    statement set, and C expressions with standard precedence.
    [#pragma cascabel task] attaches to the next function definition;
    [#pragma cascabel execute] attaches to the next statement.

    [const]/[static]/[extern] qualifiers are accepted and dropped. *)

type error = { message : string; line : int; col : int }

exception Error of error

val error_to_string : error -> string

val parse : string -> (Ast.unit_, error) result
val parse_exn : string -> Ast.unit_

val parse_expr : string -> (Ast.expr, error) result
(** Parse a standalone expression (testing convenience). *)

val tasks : Ast.unit_ -> Ast.func list
(** Functions carrying a task annotation. *)

val executes : Ast.unit_ -> (Ast.exec_annot * Ast.stmt) list
(** Every execute-annotated statement in the unit, in source order
    (searches all function bodies). *)

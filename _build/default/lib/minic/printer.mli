(** C unparser.

    Emits compilable C text from the AST. Round-trip property:
    [Parser.parse_exn (Printer.unit_to_string u)] is structurally
    equal to [u]. Expressions are printed fully parenthesized below
    statement level only where precedence requires it. *)

val type_to_string : Ast.ctype -> string
(** Abstract rendering, e.g. ["double*"]. For declarations use
    {!declaration_to_string}, which places array suffixes after the
    name. *)

val declaration_to_string : Ast.ctype -> string -> string
(** [declaration_to_string ty name] = ["double a[100]"] etc. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val func_to_string : Ast.func -> string
val top_to_string : Ast.top -> string
val unit_to_string : Ast.unit_ -> string

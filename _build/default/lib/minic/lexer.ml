type error = { message : string; line : int; col : int }

exception Error of error

let error_to_string e =
  Printf.sprintf "%s at line %d, column %d" e.message e.line e.col

type state = {
  src : string;
  mutable i : int;
  mutable line : int;
  mutable col : int;
}

let fail st fmt =
  Printf.ksprintf
    (fun message -> raise (Error { message; line = st.line; col = st.col }))
    fmt

let eof st = st.i >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.i]

let peek2 st =
  if st.i + 1 >= String.length st.src then '\000' else st.src.[st.i + 1]

let advance st =
  (if peek st = '\n' then begin
     st.line <- st.line + 1;
     st.col <- 1
   end
   else st.col <- st.col + 1);
  st.i <- st.i + 1

let looking_at st s =
  let n = String.length s in
  st.i + n <= String.length st.src && String.sub st.src st.i n = s

let skip_n st n =
  for _ = 1 to n do
    advance st
  done

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let read_while st p =
  let start = st.i in
  while (not (eof st)) && p (peek st) do
    advance st
  done;
  String.sub st.src start (st.i - start)

let read_line st =
  let start = st.i in
  while (not (eof st)) && peek st <> '\n' do
    advance st
  done;
  String.sub st.src start (st.i - start)

(* A number: integer or float, keeping the lexical form. *)
let read_number st =
  let start = st.i in
  let is_float = ref false in
  if looking_at st "0x" || looking_at st "0X" then begin
    skip_n st 2;
    let _ = read_while st (fun c -> is_digit c || (Char.lowercase_ascii c >= 'a' && Char.lowercase_ascii c <= 'f')) in
    ()
  end
  else begin
    let _ = read_while st is_digit in
    if peek st = '.' && is_digit (peek2 st) then begin
      is_float := true;
      advance st;
      let _ = read_while st is_digit in
      ()
    end
    else if peek st = '.' && not (is_ident_start (peek2 st)) then begin
      is_float := true;
      advance st
    end;
    if peek st = 'e' || peek st = 'E' then begin
      is_float := true;
      advance st;
      if peek st = '+' || peek st = '-' then advance st;
      let _ = read_while st is_digit in
      ()
    end
  end;
  (* suffixes *)
  let _ =
    read_while st (fun c ->
        match Char.lowercase_ascii c with
        | 'u' | 'l' -> true
        | 'f' when !is_float -> true
        | _ -> false)
  in
  let text = String.sub st.src start (st.i - start) in
  if !is_float then Token.Float_lit text else Token.Int_lit text

let read_quoted st quote what =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated %s" what
    else
      match peek st with
      | c when c = quote -> advance st
      | '\\' ->
          Buffer.add_char buf '\\';
          advance st;
          if eof st then fail st "unterminated %s" what;
          Buffer.add_char buf (peek st);
          advance st;
          loop ()
      | '\n' -> fail st "newline in %s" what
      | c ->
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  Buffer.contents buf

(* Pragma bodies may continue over lines in the paper's layout: a
   continuation line starts (after whitespace) with ':' or '('.
   Backslash-newline also continues, as in real C. *)
let read_pragma_body st =
  let buf = Buffer.create 64 in
  let rec read_one_line () =
    let line = read_line st in
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\\' then begin
      Buffer.add_string buf (String.sub line 0 (n - 1));
      Buffer.add_char buf ' ';
      if not (eof st) then advance st;
      read_one_line ()
    end
    else Buffer.add_string buf line
  in
  read_one_line ();
  let paren_depth () =
    let d = ref 0 in
    String.iter
      (fun c -> if c = '(' then incr d else if c = ')' then decr d)
      (Buffer.contents buf);
    !d
  in
  let rec continuations () =
    (* Unbalanced parentheses always continue; otherwise look ahead
       for a line starting with ':' or '(' (the paper's layout). *)
    let save = (st.i, st.line, st.col) in
    if not (eof st) then begin
      advance st (* the newline *);
      while (not (eof st)) && (peek st = ' ' || peek st = '\t') do
        advance st
      done;
      if
        (not (eof st))
        && (paren_depth () > 0 || peek st = ':' || peek st = '(')
      then begin
        Buffer.add_char buf ' ';
        read_one_line ();
        continuations ()
      end
      else begin
        let i, line, col = save in
        st.i <- i;
        st.line <- line;
        st.col <- col
      end
    end
  in
  continuations ();
  String.trim (Buffer.contents buf)

let tokenize src =
  let st = { src; i = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec loop () =
    if eof st then emit Token.EOF { Ast.line = st.line; col = st.col }
    else begin
      let pos = { Ast.line = st.line; col = st.col } in
      match peek st with
      | ' ' | '\t' | '\r' | '\n' ->
          advance st;
          loop ()
      | '/' when peek2 st = '/' ->
          let _ = read_line st in
          loop ()
      | '/' when peek2 st = '*' ->
          skip_n st 2;
          let rec comment () =
            if eof st then fail st "unterminated comment"
            else if looking_at st "*/" then skip_n st 2
            else begin
              advance st;
              comment ()
            end
          in
          comment ();
          loop ()
      | '#' ->
          let line_start = st.col = 1 || begin
            (* only treat # at line start (modulo blanks) as cpp *)
            let rec back j =
              j < 0 || (match src.[j] with
                        | ' ' | '\t' -> back (j - 1)
                        | '\n' -> true
                        | _ -> false)
            in
            back (st.i - 1)
          end
          in
          if not line_start then fail st "stray '#'"
          else begin
            advance st;
            while peek st = ' ' || peek st = '\t' do
              advance st
            done;
            let word = read_while st is_ident_char in
            match word with
            | "pragma" ->
                while peek st = ' ' || peek st = '\t' do
                  advance st
                done;
                emit (Token.Pragma (read_pragma_body st)) pos;
                loop ()
            | "include" | "define" | "ifdef" | "ifndef" | "endif" | "undef"
            | "if" | "else" | "elif" ->
                let rest = read_line st in
                emit (Token.Hash_line ("#" ^ word ^ rest)) pos;
                loop ()
            | other -> fail st "unsupported preprocessor directive #%s" other
          end
      | c when is_digit c ->
          emit (read_number st) pos;
          loop ()
      | '.' when is_digit (peek2 st) ->
          emit (read_number st) pos;
          loop ()
      | c when is_ident_start c ->
          let word = read_while st is_ident_char in
          emit
            (if Token.is_keyword word then Token.Keyword word
             else Token.Ident word)
            pos;
          loop ()
      | '"' ->
          emit (Token.String_lit (read_quoted st '"' "string literal")) pos;
          loop ()
      | '\'' ->
          emit (Token.Char_lit (read_quoted st '\'' "character literal")) pos;
          loop ()
      | _ -> (
          match List.find_opt (looking_at st) Token.puncts with
          | Some p ->
              skip_n st (String.length p);
              emit (Token.Punct p) pos;
              loop ()
          | None -> fail st "unexpected character %C" (peek st))
    end
  in
  loop ();
  List.rev !tokens

(** Lexer for the C subset.

    Produces a token list with source positions. Comments are
    skipped; [#pragma] lines become single {!Token.Pragma} tokens
    (with paper-style continuation lines folded in); other
    preprocessor lines ([#include], [#define]) are kept verbatim as
    tokens so the unparser can reproduce them. *)

type error = { message : string; line : int; col : int }

exception Error of error

val error_to_string : error -> string

val tokenize : string -> (Token.t * Ast.pos) list
(** @raise Error on invalid input. The list ends with {!Token.EOF}. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Split on a separator character at bracket depth 0. All three
   bracket kinds nest: parens delimit parameter lists, and square
   brackets/braces appear inside explicit platform-pattern targets
   (e.g. Master[Worker{ARCHITECTURE=gpu},Worker{ARCHITECTURE=gpu}]). *)
let split_top sep s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      (match c with
      | '(' | '[' | '{' -> incr depth
      | ')' | ']' | '}' -> decr depth
      | _ -> ());
      if c = sep && !depth = 0 then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let is_cascabel body =
  match String.index_opt body ' ' with
  | Some i -> String.sub body 0 i = "cascabel"
  | None -> body = "cascabel"

let strip_parens s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '(' && s.[n - 1] = ')' then
    String.trim (String.sub s 1 (n - 2))
  else fail "expected a parenthesized list, found %S" s

let parse_params s =
  let body = strip_parens s in
  if String.trim body = "" then []
  else
    List.map
      (fun item ->
        match split_top ':' item with
        | [ param; mode ] -> (
            match Ast.access_mode_of_string (String.lowercase_ascii mode) with
            | Some m -> { Ast.ps_param = param; ps_mode = m }
            | None -> fail "unknown access mode %S for parameter %S" mode param)
        | _ -> fail "malformed parameter spec %S (expected name:access)" item)
      (split_top ',' body)

let parse_dists s =
  let body = strip_parens s in
  if String.trim body = "" then []
  else
    List.map
      (fun item ->
        match split_top ':' item with
        | param :: kind :: rest -> (
            match Ast.dist_kind_of_string kind with
            | Some k ->
                let size =
                  match rest with
                  | [] -> None
                  | [ sz ] -> Some sz
                  | _ -> fail "too many fields in distribution spec %S" item
                in
                { Ast.ds_param = param; ds_kind = k; ds_size = size }
            | None -> fail "unknown distribution %S for parameter %S" kind param)
        | _ -> fail "malformed distribution spec %S" item)
      (split_top ',' body)

let parse_task segments =
  match segments with
  | [ targets; interface; name; params ] ->
      let targets =
        List.filter (fun t -> t <> "") (split_top ',' targets)
      in
      if targets = [] then fail "task annotation needs at least one target";
      if interface = "" then fail "task annotation needs a task identifier";
      if name = "" then fail "task annotation needs a task name";
      Ast.Task_pragma
        {
          ta_targets = targets;
          ta_interface = interface;
          ta_name = name;
          ta_params = parse_params params;
        }
  | _ ->
      fail
        "task annotation expects 4 ':'-separated fields \
         (targets:identifier:name:(params)), found %d"
        (List.length segments)

let parse_execute head segments =
  (* head = "execute <interface>" *)
  let interface =
    match String.split_on_char ' ' head |> List.filter (( <> ) "") with
    | [ "execute"; id ] -> id
    | _ -> fail "execute annotation must name a task identifier"
  in
  match segments with
  | [ group_and_dists ] ->
      let group, dists =
        match String.index_opt group_and_dists '(' with
        | Some i ->
            ( String.trim (String.sub group_and_dists 0 i),
              parse_dists
                (String.sub group_and_dists i
                   (String.length group_and_dists - i)) )
        | None -> (String.trim group_and_dists, [])
      in
      if group = "" then fail "execute annotation needs an execution group";
      Ast.Execute_pragma
        { ea_interface = interface; ea_group = group; ea_dists = dists }
  | [] -> fail "execute annotation needs an execution group"
  | _ -> fail "execute annotation has too many ':' fields"

let parse body =
  if not (is_cascabel body) then
    fail "not a cascabel pragma: %S" body;
  let rest =
    String.trim (String.sub body 8 (String.length body - 8))
  in
  match split_top ':' rest with
  | head :: segments ->
      let head = String.trim head in
      if head = "task" then parse_task segments
      else if
        String.length head >= 7 && String.sub head 0 7 = "execute"
      then parse_execute head segments
      else fail "unknown cascabel annotation %S (expected task or execute)" head
  | [] -> fail "empty cascabel pragma"

let task_to_string (t : Ast.task_annot) =
  Printf.sprintf "cascabel task : %s : %s : %s : (%s)"
    (String.concat ", " t.ta_targets)
    t.ta_interface t.ta_name
    (String.concat ", "
       (List.map
          (fun p ->
            Printf.sprintf "%s: %s" p.Ast.ps_param
              (Ast.access_mode_to_string p.Ast.ps_mode))
          t.ta_params))

let exec_to_string (e : Ast.exec_annot) =
  Printf.sprintf "cascabel execute %s : %s%s" e.ea_interface e.ea_group
    (if e.ea_dists = [] then ""
     else
       Printf.sprintf " (%s)"
         (String.concat ", "
            (List.map
               (fun d ->
                 Printf.sprintf "%s:%s%s" d.Ast.ds_param
                   (Ast.dist_kind_to_string d.Ast.ds_kind)
                   (match d.Ast.ds_size with
                   | Some sz -> ":" ^ sz
                   | None -> ""))
               e.ea_dists)))

let to_string = function
  | Ast.Task_pragma t -> task_to_string t
  | Ast.Execute_pragma e -> exec_to_string e

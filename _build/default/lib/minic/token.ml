(* Lexical tokens of the C subset. *)

type t =
  | Ident of string
  | Keyword of string
  | Int_lit of string
  | Float_lit of string
  | Char_lit of string
  | String_lit of string
  | Punct of string  (** operators and punctuation, longest-match *)
  | Pragma of string  (** full pragma body after [#pragma] *)
  | Hash_line of string  (** verbatim [#include]/[#define] line *)
  | EOF

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "float"; "double"; "unsigned";
    "signed"; "struct"; "union"; "enum"; "typedef"; "if"; "else"; "while";
    "do"; "for"; "return"; "break"; "continue"; "sizeof"; "const"; "static";
    "extern"; "switch"; "case"; "default"; "goto";
  ]

let is_keyword s = List.mem s keywords

(* Multi-character punctuators, longest first. *)
let puncts =
  [
    "<<="; ">>="; "..."; "->"; "++"; "--"; "<<"; ">>"; "<="; ">="; "=="; "!=";
    "&&"; "||"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "("; ")"; "[";
    "]"; "{"; "}"; ";"; ","; ":"; "?"; "."; "+"; "-"; "*"; "/"; "%"; "<"; ">";
    "="; "!"; "&"; "|"; "^"; "~";
  ]

let to_string = function
  | Ident s -> s
  | Keyword s -> s
  | Int_lit s | Float_lit s -> s
  | Char_lit s -> Printf.sprintf "'%s'" s
  | String_lit s -> Printf.sprintf "%S" s
  | Punct s -> s
  | Pragma s -> "#pragma " ^ s
  | Hash_line s -> s
  | EOF -> "<eof>"

(* Abstract syntax of the C subset Cascabel consumes, plus the
   structured form of the paper's #pragma cascabel annotations. *)

type pos = { line : int; col : int } [@@deriving show { with_path = false }, eq]

(* --- types ----------------------------------------------------------- *)

type ctype =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double
  | Unsigned of ctype
  | Pointer of ctype
  | Array of ctype * expr option  (** [double a[N]] *)
  | Struct_ref of string  (** [struct foo] *)
  | Named of string  (** typedef name *)
[@@deriving show { with_path = false }, eq]

(* --- expressions ----------------------------------------------------- *)

and unop = Neg | Pos | Not | Bit_not | Deref | Addr | Pre_inc | Pre_dec
[@@deriving show { with_path = false }, eq]

and binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Gt | Le | Ge
  | And | Or
  | Bit_and | Bit_or | Bit_xor | Shl | Shr
[@@deriving show { with_path = false }, eq]

and expr =
  | Int_lit of string  (** lexical form kept: [0x10], [42L] *)
  | Float_lit of string
  | Char_lit of string  (** body between quotes, escapes kept *)
  | String_lit of string
  | Ident of string
  | Call of expr * expr list
  | Index of expr * expr
  | Member of expr * string  (** [e.f] *)
  | Arrow of expr * string  (** [e->f] *)
  | Unary of unop * expr
  | Post_inc of expr
  | Post_dec of expr
  | Binary of binop * expr * expr
  | Assign of string option * expr * expr
      (** [Assign (op, lhs, rhs)]: [op] is [None] for [=], [Some "+"]
          for [+=], ... *)
  | Ternary of expr * expr * expr
  | Cast of ctype * expr
  | Sizeof_type of ctype
  | Sizeof_expr of expr
  | Comma of expr * expr
[@@deriving show { with_path = false }, eq]

(* --- statements and declarations ------------------------------------- *)

type declarator = {
  d_name : string;
  d_type : ctype;  (** full type with pointers/arrays applied *)
  d_init : expr option;
}
[@@deriving show { with_path = false }, eq]

type stmt =
  | Expr_stmt of expr option  (** [;] when [None] *)
  | Decl_stmt of declarator list
  | Block of stmt list
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of for_init option * expr option * expr option * stmt
  | Return of expr option
  | Break
  | Continue
  | Pragma_stmt of pragma * stmt
      (** an [execute] pragma attached to the following statement *)

and for_init = For_expr of expr | For_decl of declarator list
[@@deriving show { with_path = false }, eq]

(* --- annotations (paper §IV-A) --------------------------------------- *)

and access_mode = Read | Write | Readwrite
[@@deriving show { with_path = false }, eq]

and param_spec = { ps_param : string; ps_mode : access_mode }
[@@deriving show { with_path = false }, eq]

and dist_kind = Block_dist | Cyclic_dist | Block_cyclic_dist
[@@deriving show { with_path = false }, eq]

and dist_spec = {
  ds_param : string;
  ds_kind : dist_kind;
  ds_size : string option;  (** optional size argument *)
}
[@@deriving show { with_path = false }, eq]

and task_annot = {
  ta_targets : string list;  (** targetplatformlist, e.g. ["x86"; "OpenCL"] *)
  ta_interface : string;  (** taskidentifier *)
  ta_name : string;  (** taskname: unique per implementation *)
  ta_params : param_spec list;
}
[@@deriving show { with_path = false }, eq]

and exec_annot = {
  ea_interface : string;
  ea_group : string;  (** executiongroup -> LogicGroupAttribute *)
  ea_dists : dist_spec list;
}
[@@deriving show { with_path = false }, eq]

and pragma = Task_pragma of task_annot | Execute_pragma of exec_annot
[@@deriving show { with_path = false }, eq]

(* --- top level -------------------------------------------------------- *)

type param = { p_name : string; p_type : ctype }
[@@deriving show { with_path = false }, eq]

type func = {
  f_name : string;
  f_return : ctype;
  f_params : param list;
  f_body : stmt list option;  (** [None] for prototypes *)
  f_task : task_annot option;  (** attached task pragma, if any *)
}
[@@deriving show { with_path = false }, eq]

type top =
  | Func of func
  | Global of declarator list
  | Typedef of string * ctype
  | Include of string  (** verbatim [#include ...] line *)
  | Define of string  (** verbatim [#define ...] line *)
[@@deriving show { with_path = false }, eq]

type unit_ = top list [@@deriving show { with_path = false }, eq]

let access_mode_of_string = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "readwrite" -> Some Readwrite
  | _ -> None

let access_mode_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Readwrite -> "readwrite"

let dist_kind_of_string s =
  match String.uppercase_ascii s with
  | "BLOCK" -> Some Block_dist
  | "CYCLIC" -> Some Cyclic_dist
  | "BLOCKCYCLIC" | "BLOCK_CYCLIC" | "BLOCK-CYCLIC" -> Some Block_cyclic_dist
  | _ -> None

let dist_kind_to_string = function
  | Block_dist -> "BLOCK"
  | Cyclic_dist -> "CYCLIC"
  | Block_cyclic_dist -> "BLOCKCYCLIC"

open Minic.Ast

type variant = {
  v_interface : string;
  v_name : string;
  v_targets : Targets.t list;
  v_func : Minic.Ast.func;
  v_params : Minic.Ast.param_spec list;
}

type t = { mutable items : variant list (* reverse registration order *) }

let create () = { items = [] }

let interfaces t =
  List.fold_left
    (fun acc v ->
      if List.mem v.v_interface acc then acc else v.v_interface :: acc)
    [] t.items
  |> List.rev

let variants t interface =
  List.rev (List.filter (fun v -> v.v_interface = interface) t.items)

let find_variant t name = List.find_opt (fun v -> v.v_name = name) t.items
let all_variants t = List.rev t.items
let size t = List.length t.items

let signature f = (f.f_return, List.map (fun p -> p.p_type) f.f_params)

let register_variant t (f : func) (annot : task_annot) =
  let ( let* ) = Result.bind in
  let* () =
    if find_variant t annot.ta_name <> None then
      Error (Printf.sprintf "duplicate task variant name %S" annot.ta_name)
    else Ok ()
  in
  let* targets =
    List.fold_left
      (fun acc name ->
        let* ts = acc in
        let* target = Targets.resolve name in
        Ok (ts @ [ target ]))
      (Ok []) annot.ta_targets
  in
  let param_names = List.map (fun p -> p.p_name) f.f_params in
  let* () =
    match
      List.find_opt
        (fun ps -> not (List.mem ps.ps_param param_names))
        annot.ta_params
    with
    | Some ps ->
        Error
          (Printf.sprintf
             "task %S: parameter spec %S does not name a parameter of %s"
             annot.ta_name ps.ps_param f.f_name)
    | None -> Ok ()
  in
  let* () =
    match variants t annot.ta_interface with
    | [] -> Ok ()
    | peer :: _ ->
        if signature peer.v_func = signature f then Ok ()
        else
          Error
            (Printf.sprintf
               "task %S: signature differs from variant %S of interface %S \
                (all implementations must share the function signature)"
               annot.ta_name peer.v_name annot.ta_interface)
  in
  let v =
    {
      v_interface = annot.ta_interface;
      v_name = annot.ta_name;
      v_targets = targets;
      v_func = f;
      v_params = annot.ta_params;
    }
  in
  t.items <- v :: t.items;
  Ok v

let register_unit t unit_ =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc top ->
      let* vs = acc in
      match top with
      | Func ({ f_task = Some annot; _ } as f) ->
          let* v = register_variant t f annot in
          Ok (vs @ [ v ])
      | _ -> Ok vs)
    (Ok []) unit_

let has_fallback t interface =
  List.exists
    (fun v -> List.exists Targets.is_fallback v.v_targets)
    (variants t interface)

let access_of v name =
  match List.find_opt (fun ps -> ps.ps_param = name) v.v_params with
  | Some ps -> Some ps.ps_mode
  | None -> (
      match
        List.find_opt (fun p -> p.p_name = name) v.v_func.f_params
      with
      | Some { p_type = Pointer _ | Array _; _ } -> Some Read
      | _ -> None)

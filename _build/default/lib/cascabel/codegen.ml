open Minic.Ast

type execute_site = {
  x_interface : string;
  x_group : string;
  x_dists : Minic.Ast.dist_spec list;
  x_function : string;
}

type output = {
  gen_unit : Minic.Ast.unit_;
  gen_source : string;
  sites : execute_site list;
  selections : Preselect.selection list;
  mappings : Mapping.site_mapping list;
  plan : Compile_plan.t;
  makefile : string;
}

let handle_type = Named "cascabel_handle_t"

let call name args = Expr_stmt (Some (Call (Ident name, args)))

(* Rewrite one execute site into runtime calls.  The call's pointer
   arguments are registered as handles (with their annotated
   distribution); scalars pass through. *)
let rewrite_site counter (site_func : func) (annot : exec_annot) args =
  let handle_decls = ref [] in
  let submit_args = ref [] in
  List.iteri
    (fun i arg ->
      let param = List.nth_opt site_func.f_params i in
      let is_pointer =
        match param with
        | Some { p_type = Pointer _ | Array _; _ } -> true
        | _ -> false
      in
      if is_pointer then begin
        let pname =
          match param with Some p -> p.p_name | None -> assert false
        in
        let dist =
          List.find_opt (fun d -> d.ds_param = pname) annot.ea_dists
        in
        incr counter;
        let var = Printf.sprintf "__cascabel_h%d" !counter in
        let register =
          match dist with
          | Some d ->
              Call
                ( Ident "cascabel_register_distributed",
                  [
                    arg;
                    String_lit (Minic.Ast.dist_kind_to_string d.ds_kind);
                  ]
                  @
                  match d.ds_size with
                  | Some sz ->
                      [
                        (match int_of_string_opt sz with
                        | Some _ -> Int_lit sz
                        | None -> Ident sz);
                      ]
                  | None -> [] )
          | None -> Call (Ident "cascabel_register", [ arg ])
        in
        handle_decls :=
          Decl_stmt [ { d_name = var; d_type = handle_type; d_init = Some register } ]
          :: !handle_decls;
        submit_args := Ident var :: !submit_args
      end
      else submit_args := arg :: !submit_args)
    args;
  Block
    (List.rev !handle_decls
    @ [
        call "cascabel_submit"
          (String_lit annot.ea_interface
           :: String_lit annot.ea_group
           :: List.rev !submit_args);
        call "cascabel_wait_all" [];
      ])

let find_function unit_ name =
  List.find_map
    (function
      | Func f when f.f_name = name -> Some f
      | _ -> None)
    unit_

(* Walk a statement, rewriting execute pragmas. *)
let rec rewrite_stmt unit_ counter errors s =
  match s with
  | Pragma_stmt (Execute_pragma annot, inner) -> (
      match inner with
      | Expr_stmt (Some (Call (Ident fname, args))) -> (
          match find_function unit_ fname with
          | Some f -> rewrite_site counter f annot args
          | None ->
              errors :=
                Printf.sprintf "execute pragma calls unknown function %S" fname
                :: !errors;
              inner)
      | _ ->
          errors :=
            "execute pragma must precede a plain function call" :: !errors;
          inner)
  | Pragma_stmt (Task_pragma _, inner) -> rewrite_stmt unit_ counter errors inner
  | Block ss -> Block (List.map (rewrite_stmt unit_ counter errors) ss)
  | If (c, a, b) ->
      If
        ( c,
          rewrite_stmt unit_ counter errors a,
          Option.map (rewrite_stmt unit_ counter errors) b )
  | While (c, body) -> While (c, rewrite_stmt unit_ counter errors body)
  | Do_while (body, c) -> Do_while (rewrite_stmt unit_ counter errors body, c)
  | For (i, c, st, body) -> For (i, c, st, rewrite_stmt unit_ counter errors body)
  | Expr_stmt _ | Decl_stmt _ | Return _ | Break | Continue -> s

let init_calls platform selections =
  call "cascabel_init"
    [ String_lit platform.Pdl_model.Machine.pf_name ]
  :: List.concat_map
       (fun (sel : Preselect.selection) ->
         List.map
           (fun (v : Repository.variant) ->
             let arch =
               match v.v_targets with
               | t :: _ -> t.Targets.arch_class
               | [] -> "cpu"
             in
             call "cascabel_register_variant"
               [
                 String_lit sel.Preselect.sel_interface;
                 String_lit v.v_name;
                 String_lit arch;
               ])
           sel.Preselect.kept)
       selections

(* Insert shutdown before every return of main and at the end. *)
let rec add_shutdown stmts =
  match stmts with
  | [] -> [ call "cascabel_shutdown" [] ]
  | [ Return _ as r ] -> [ call "cascabel_shutdown" []; r ]
  | s :: rest -> shutdown_in_stmt s :: add_shutdown rest

and shutdown_in_stmt = function
  | Block ss -> Block (add_shutdown_returns ss)
  | If (c, a, b) -> If (c, shutdown_in_stmt a, Option.map shutdown_in_stmt b)
  | s -> s

and add_shutdown_returns = function
  | [] -> []
  | (Return _ as r) :: rest ->
      call "cascabel_shutdown" [] :: r :: add_shutdown_returns rest
  | s :: rest -> shutdown_in_stmt s :: add_shutdown_returns rest

let translate ~repo ~platform ?(program_name = "cascabel_out") unit_ =
  let errors = ref [] in
  (* Step 1: task registration. *)
  (match Repository.register_unit repo unit_ with
  | Ok _ -> ()
  | Error e -> errors := e :: !errors);
  (* Collect execute sites. *)
  let sites =
    List.filter_map
      (fun ((annot : exec_annot), stmt) ->
        match stmt with
        | Expr_stmt (Some (Call (Ident fname, _))) ->
            Some
              {
                x_interface = annot.ea_interface;
                x_group = annot.ea_group;
                x_dists = annot.ea_dists;
                x_function = fname;
              }
        | _ ->
            errors := "execute pragma must precede a plain call" :: !errors;
            None)
      (Minic.Parser.executes unit_)
  in
  (* Group validation against the PDL. *)
  let platform_groups = Pdl_model.Machine.groups platform in
  List.iter
    (fun site ->
      if not (List.mem site.x_group platform_groups) then
        errors :=
          Printf.sprintf
            "execution group %S is not a LogicGroupAttribute of platform %S \
             (available: %s)"
            site.x_group platform.Pdl_model.Machine.pf_name
            (String.concat ", " platform_groups)
          :: !errors)
    sites;
  (* Step 2: static pre-selection for the used interfaces. *)
  let used_interfaces =
    List.sort_uniq compare (List.map (fun s -> s.x_interface) sites)
  in
  let selections =
    List.filter_map
      (fun interface ->
        match Preselect.select_interface repo platform interface with
        | Ok sel -> Some sel
        | Error e ->
            errors := e :: !errors;
            None)
      used_interfaces
  in
  (* Step 2b: static task mapping per execute site (groups already
     reported as invalid above are skipped to avoid duplicate
     errors). *)
  let mappings =
    List.filter_map
      (fun site ->
        if not (List.mem site.x_group platform_groups) then None
        else
        match
          List.find_opt
            (fun (s : Preselect.selection) ->
              s.sel_interface = site.x_interface)
            selections
        with
        | None -> None
        | Some sel -> (
            match Mapping.map_site sel platform ~group:site.x_group with
            | Ok m -> Some m
            | Error e ->
                errors := e :: !errors;
                None))
      sites
  in
  if !errors <> [] then Error (List.rev !errors)
  else begin
    (* Step 3: output construction. *)
    let counter = ref 0 in
    let kept_variant_names =
      List.concat_map
        (fun (sel : Preselect.selection) ->
          List.map (fun (v : Repository.variant) -> v.Repository.v_name) sel.kept)
        selections
    in
    let is_kept_variant f =
      List.exists
        (fun (v : Repository.variant) ->
          v.v_func.f_name = f.f_name
          && List.mem v.v_name kept_variant_names)
        (Repository.all_variants repo)
    in
    let rewritten =
      List.filter_map
        (fun top ->
          match top with
          | Func ({ f_task = Some _; _ } as f) ->
              (* Variant definitions: keep only selected ones, pragma
                 consumed. *)
              if is_kept_variant f then Some (Func { f with f_task = None })
              else None
          | Func ({ f_body = Some body; _ } as f) ->
              let body =
                List.map (rewrite_stmt unit_ counter errors) body
              in
              let body =
                if f.f_name = "main" then
                  init_calls platform selections @ add_shutdown body
                else body
              in
              Some (Func { f with f_body = Some body })
          | top -> Some top)
        unit_
    in
    (* Kept variants that came from the repository but not from this
       file are appended (the paper's shared repository flow). *)
    let in_unit name =
      List.exists
        (function Func f -> f.f_name = name | _ -> false)
        unit_
    in
    let extra_variants =
      List.filter_map
        (fun (v : Repository.variant) ->
          if
            List.mem v.v_name kept_variant_names
            && not (in_unit v.v_func.f_name)
          then Some (Func { v.v_func with f_task = None })
          else None)
        (Repository.all_variants repo)
    in
    let preamble =
      [
        Include "#include \"cascabel_rt.h\"";
        Typedef ("cascabel_handle_t", Long);
      ]
    in
    let gen_unit = preamble @ extra_variants @ rewritten in
    let plan = Compile_plan.derive ~program_name ~selections ~platform in
    Ok
      {
        gen_unit;
        gen_source = Minic.Printer.unit_to_string gen_unit;
        sites;
        selections;
        mappings;
        plan;
        makefile = Compile_plan.to_makefile plan;
      }
  end

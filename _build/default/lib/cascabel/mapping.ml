open Pdl_model.Machine

type assignment = {
  a_pu : pu;
  a_variant : Repository.variant;
  a_path : string list;
}

type site_mapping = {
  m_interface : string;
  m_group : string;
  m_assignments : assignment list;
  m_unmapped : pu list;
}

(* The kept variant a PU would execute: the latest kept variant (the
   most specific by pre-selection order) with a target whose
   architecture class matches the PU's. *)
let variant_for (sel : Preselect.selection) pu =
  let arch = Taskrt.Machine_config.arch_class_of_pu pu in
  List.fold_left
    (fun acc (v : Repository.variant) ->
      if List.exists (fun (t : Targets.t) -> t.arch_class = arch) v.v_targets
      then Some v
      else acc)
    None sel.Preselect.kept

let shortest_route pf ~from ~to_ =
  match routes pf from to_ with
  | [] -> []
  | rs ->
      List.fold_left
        (fun best r -> if List.length r < List.length best then r else best)
        (List.hd rs) rs

let map_site (sel : Preselect.selection) pf ~group =
  if not (List.mem group (groups pf)) then
    Error
      (Printf.sprintf
         "execution group %S is not a LogicGroupAttribute of platform %S"
         group pf.pf_name)
  else begin
    let members = group_members pf group in
    let master_of pu =
      match path_to pf pu.pu_id with m :: _ -> Some m | [] -> None
    in
    let assignments, unmapped =
      List.fold_left
        (fun (assigned, unmapped) pu ->
          match variant_for sel pu with
          | Some v ->
              let path =
                match master_of pu with
                | Some m when m.pu_id <> pu.pu_id ->
                    shortest_route pf ~from:m.pu_id ~to_:pu.pu_id
                | _ -> []
              in
              (assigned @ [ { a_pu = pu; a_variant = v; a_path = path } ], unmapped)
          | None -> (assigned, unmapped @ [ pu ]))
        ([], []) members
    in
    if assignments = [] then
      Error
        (Printf.sprintf
           "no kept variant of %S can run on any PU of group %S"
           sel.Preselect.sel_interface group)
    else
      Ok
        {
          m_interface = sel.Preselect.sel_interface;
          m_group = group;
          m_assignments = assignments;
          m_unmapped = unmapped;
        }
  end

let report mappings =
  let buf = Buffer.create 256 in
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "task %s -> group %s:\n" m.m_interface m.m_group);
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "  %-12s x%-3d runs %-16s%s\n" a.a_pu.pu_id
               a.a_pu.pu_quantity a.a_variant.Repository.v_name
               (match a.a_path with
               | [] | [ _ ] -> ""
               | path ->
                   "  (data path " ^ String.concat " -> " path ^ ")")))
        m.m_assignments;
      List.iter
        (fun pu ->
          Buffer.add_string buf
            (Printf.sprintf "  %-12s      unmapped (no suitable variant)\n"
               pu.pu_id))
        m.m_unmapped)
    mappings;
  Buffer.contents buf

(** Task mapping (paper §IV-B).

    "The execute annotation enables via the LogicGroupAttribute the
    specification of execution groups ... From that generic model a
    compiler or run-time can further automatically derive optimized
    mapping decisions to physical hardware elements."

    This module performs the static half: for an execute site it
    resolves the execution group to concrete PUs, pairs every PU with
    the kept variant that can run there (by architecture class), and
    derives the data-transfer path from the controlling Master to each
    PU over the explicitly specified Interconnect entities — "the PDL
    allows us to derive data-transfer paths between memory-regions and
    communication between processing-units" (§IV-C). *)

type assignment = {
  a_pu : Pdl_model.Machine.pu;
  a_variant : Repository.variant;  (** the variant this PU would run *)
  a_path : string list;
      (** PU ids from the controlling Master to the PU, interconnect
          hops; [[]] when no route is declared *)
}

type site_mapping = {
  m_interface : string;
  m_group : string;
  m_assignments : assignment list;
  m_unmapped : Pdl_model.Machine.pu list;
      (** group members no kept variant can serve *)
}

val map_site :
  Preselect.selection ->
  Pdl_model.Machine.platform ->
  group:string ->
  (site_mapping, string) result
(** Fails when the group is unknown or no member can run any kept
    variant. *)

val report : site_mapping list -> string
(** Human-readable mapping table, one line per PU. *)

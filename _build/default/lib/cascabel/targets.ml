type t = {
  target_name : string;
  pattern : Pdl.Pattern.t;
  arch_class : string;
}

let pattern_of s = Pdl.Pattern.parse s

(* Pattern requirements per well-known target:
   - plain CPU code only needs a Master;
   - SMP code wants a pool of CPU-class workers;
   - GPU code wants a gpu Worker under a Master;
   - Cell code wants the Hybrid(PPE)/Worker(SPE) shape. *)
let builtin name =
  match String.lowercase_ascii name with
  | "x86" | "cpu" | "sequential" | "serial" ->
      Some (pattern_of "Master", "cpu")
  | "smp" | "multicore" ->
      Some (pattern_of "Master[Worker{ROLE=cpu-core,quantity>=2}]", "cpu")
  | "opencl" | "cuda" | "gpu" | "gpgpu" ->
      Some (pattern_of "Master[Worker{ARCHITECTURE=gpu}]", "gpu")
  | "cellsdk" | "cell" | "spe" ->
      Some (pattern_of "Hybrid[Worker{ARCHITECTURE=spe}]", "spe")
  | _ -> None

let builtin_names =
  [
    "x86"; "cpu"; "sequential"; "serial"; "smp"; "multicore"; "OpenCL";
    "Cuda"; "gpu"; "gpgpu"; "CellSDK"; "cell"; "spe";
  ]

(* When an explicit pattern constrains ARCHITECTURE on some node, use
   that as the variant's architecture class. *)
let arch_of_pattern (p : Pdl.Pattern.t) =
  let rec find (p : Pdl.Pattern.t) =
    let own =
      List.find_map
        (function
          | Pdl.Pattern.Prop_eq (("ARCHITECTURE" | "ARCH"), v) -> Some v
          | _ -> None)
        p.pat_constraints
    in
    match own with
    | Some v ->
        let v = String.lowercase_ascii v in
        if List.mem v [ "x86"; "x86_64"; "ppc64"; "cpu" ] then Some "cpu"
        else Some v
    | None -> List.find_map find p.pat_children
  in
  (* Prefer the deepest (leaf) constraint: a Master[Worker{gpu}]
     pattern is gpu code even though the Master is x86. *)
  let rec deepest (p : Pdl.Pattern.t) =
    match List.filter_map deepest p.pat_children with
    | hit :: _ -> Some hit
    | [] -> find { p with pat_children = [] }
  in
  match deepest p with Some a -> a | None -> Option.value ~default:"cpu" (find p)

let resolve name =
  let name = String.trim name in
  match builtin name with
  | Some (pattern, arch_class) -> Ok { target_name = name; pattern; arch_class }
  | None -> (
      match Pdl.Pattern.parse_result name with
      | Ok pattern ->
          Ok { target_name = name; pattern; arch_class = arch_of_pattern pattern }
      | Error _ ->
          Error
            (Printf.sprintf
               "unknown target platform %S (known: %s; or use pattern syntax)"
               name
               (String.concat ", " builtin_names)))

let is_fallback t = t.arch_class = "cpu" && t.pattern.Pdl.Pattern.pat_children = []

lib/cascabel/codegen.ml: Compile_plan List Mapping Minic Option Pdl_model Preselect Printf Repository String Targets

lib/cascabel/interp.ml: Array Buffer Char Float Hashtbl List Minic Option Printf Scanf String

lib/cascabel/runnable.ml: Array Hashtbl Interp Kernels List Minic Option Pdl_model Preselect Printf Repository Targets Taskrt

lib/cascabel/compile_plan.mli: Pdl_model Preselect

lib/cascabel/targets.ml: List Option Pdl Printf String

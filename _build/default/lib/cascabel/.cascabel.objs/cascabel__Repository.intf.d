lib/cascabel/repository.mli: Minic Targets

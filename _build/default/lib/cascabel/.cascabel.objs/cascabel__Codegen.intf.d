lib/cascabel/codegen.mli: Compile_plan Mapping Minic Pdl_model Preselect Repository

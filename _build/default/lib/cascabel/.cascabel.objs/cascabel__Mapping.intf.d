lib/cascabel/mapping.mli: Pdl_model Preselect Repository

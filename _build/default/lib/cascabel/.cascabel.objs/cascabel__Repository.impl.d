lib/cascabel/repository.ml: List Minic Printf Result Targets

lib/cascabel/targets.mli: Pdl

lib/cascabel/preselect.ml: Buffer List Option Pdl Pdl_model Printf Repository Result Targets

lib/cascabel/preselect.mli: Pdl_model Repository Targets

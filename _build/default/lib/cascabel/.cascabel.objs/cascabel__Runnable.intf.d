lib/cascabel/runnable.mli: Minic Pdl_model Repository Taskrt

lib/cascabel/compile_plan.ml: Buffer List Pdl_model Preselect Printf Repository String Targets Taskrt

lib/cascabel/interp.mli: Minic

lib/cascabel/mapping.ml: Buffer List Pdl_model Preselect Printf Repository String Targets Taskrt

(** Output generation (paper §IV-C step 3).

    Translates an annotated serial program, parameterized by a target
    PDL descriptor, into an output program for that target:

    - task pragmas are consumed into the repository; the {e kept}
      implementation variants (after pre-selection against the PDL)
      are included in the output, pruned ones dropped;
    - every [execute] site is rewritten into Cascabel runtime calls:
      data registration (with the annotation's distribution), task
      submission to the annotation's execution group, and
      synchronization;
    - [main] gains runtime initialization (naming the PDL platform and
      the selected variants) and shutdown;
    - a compilation plan ({!Compile_plan}) is derived from the kept
      variants' target architectures.

    The generated source is well-formed mini-C: it re-parses with
    {!Minic.Parser} (a property the tests enforce). Running it is the
    job of {!Runnable}, which gives the same translation executable
    semantics on the simulated machine. *)

type execute_site = {
  x_interface : string;
  x_group : string;
  x_dists : Minic.Ast.dist_spec list;
  x_function : string;  (** the function called at the site *)
}

type output = {
  gen_unit : Minic.Ast.unit_;  (** transformed program *)
  gen_source : string;  (** printed form of [gen_unit] *)
  sites : execute_site list;
  selections : Preselect.selection list;
      (** pre-selection results for every interface the program uses *)
  mappings : Mapping.site_mapping list;
      (** static task mapping (§IV-B), one per execute site *)
  plan : Compile_plan.t;
  makefile : string;
}

val translate :
  repo:Repository.t ->
  platform:Pdl_model.Machine.platform ->
  ?program_name:string ->
  Minic.Ast.unit_ ->
  (output, string list) result
(** Registers the unit's tasks into [repo] (which may already hold
    variants from other files — the paper's shared repository), then
    translates. All errors are collected: unresolved interfaces,
    execution groups absent from the platform's
    [LogicGroupAttribute]s, missing fallback variants, no variant
    matching the platform. *)

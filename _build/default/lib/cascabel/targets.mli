(** Target platform names of the [targetplatformlist] annotation
    field (paper §IV-A) and their meaning.

    A task variant declares the platforms it is written for — e.g.
    [x86], [OpenCL], [Cuda], [CellSDK]. For pre-selection each target
    name denotes a {e platform pattern} that must embed into the
    target PDL descriptor; for execution it denotes the architecture
    class whose workers may run the variant. Unknown names are
    accepted when they parse as explicit pattern syntax
    ({!Pdl.Pattern}), giving expert programmers the full pattern
    language in annotations. *)

type t = {
  target_name : string;  (** as written in the annotation *)
  pattern : Pdl.Pattern.t;  (** requirement on the target platform *)
  arch_class : string;  (** worker class executing this variant *)
}

val resolve : string -> (t, string) result
(** Known names (case-insensitive): [x86], [cpu], [sequential], [smp]
    [-> "cpu"]; [OpenCL], [Cuda], [gpu], [gpgpu] [-> "gpu"];
    [CellSDK], [spe] [-> "spe"]. Anything else must parse as pattern
    syntax (arch class defaults to ["cpu"] unless the pattern
    constrains [ARCHITECTURE]). *)

val builtin_names : string list

val is_fallback : t -> bool
(** Is this a sequential CPU fallback target (always satisfiable)? *)

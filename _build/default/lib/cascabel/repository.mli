(** The task implementation repository (paper §IV-C step 1).

    Code regions outlined by [task] annotations are registered here.
    A {e task interface} (the [taskidentifier]) groups implementation
    {e variants} ([taskname]s) that share functionality and function
    signature; each variant declares the target platforms it is
    written for. *)

type variant = {
  v_interface : string;
  v_name : string;  (** unique across the repository *)
  v_targets : Targets.t list;
  v_func : Minic.Ast.func;
  v_params : Minic.Ast.param_spec list;  (** access modes, in
      annotation order *)
}

type t

val create : unit -> t

val register_unit : t -> Minic.Ast.unit_ -> (variant list, string) result
(** Register every task-annotated function of a translation unit.
    Fails on: duplicate variant names, unresolvable targets,
    parameter specs naming unknown function parameters, or variants
    of one interface disagreeing on the signature (same arity and
    parameter types required). *)

val interfaces : t -> string list
val variants : t -> string -> variant list
(** All variants of an interface, registration order. *)

val find_variant : t -> string -> variant option
(** Lookup by variant name. *)

val all_variants : t -> variant list
val size : t -> int

val has_fallback : t -> string -> bool
(** Does the interface have a sequential CPU fallback variant? The
    paper requires one per task. *)

val access_of : variant -> string -> Minic.Ast.access_mode option
(** Access mode of a function parameter (from the annotation);
    unannotated parameters default to [Read] for pointers and are
    [None] for scalars. *)

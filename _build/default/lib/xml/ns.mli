(** Namespace resolution.

    Expands the prefixed names of a {!Dom} tree into (URI, local)
    pairs according to in-scope [xmlns] / [xmlns:p] declarations.
    PDL uses namespaces for descriptor subschemas
    (e.g. [xsi:type="ocl:oclDevicePropertyType"]). *)

type xname = { uri : string; xlocal : string }

val xname : ?uri:string -> string -> xname
val xname_to_string : xname -> string
(** ["{uri}local"] (Clark notation) or just ["local"]. *)

val xsi : string
(** The [http://www.w3.org/2001/XMLSchema-instance] namespace URI. *)

type scope
(** An immutable prefix [->] URI environment. *)

val root_scope : scope
(** Binds only the reserved [xml] and [xmlns] prefixes. *)

val of_bindings : (string * string) list -> scope
(** Extends {!root_scope}; keys are prefixes ([""] = default NS). *)

val extend : scope -> Dom.element -> scope
(** [extend sc el] adds the [xmlns] declarations appearing on [el]. *)

val lookup : scope -> string -> string option
(** URI bound to a prefix, if any. *)

val declarations : Dom.element -> (string * string) list
(** The (prefix, uri) pairs declared directly on an element. *)

val resolve_name : scope -> Dom.name -> (xname, string) result
(** Errors when the prefix is undeclared. Unprefixed names resolve to
    the default namespace (which may be [""]). *)

val resolve_attr_name : scope -> Dom.name -> (xname, string) result
(** Attributes differ from elements: an unprefixed attribute is in
    {e no} namespace regardless of the default namespace. *)

val fold :
  scope ->
  Dom.element ->
  init:'a ->
  f:('a -> scope -> Dom.element -> 'a) ->
  'a
(** Pre-order traversal threading the correct scope to each element. *)

val xsi_type : scope -> Dom.element -> (xname option, string) result
(** The expanded value of the element's [xsi:type] attribute, if
    present: the attribute {e value} is itself a prefixed name that is
    resolved in the element's scope. *)

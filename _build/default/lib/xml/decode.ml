type error = { message : string; at : Loc.span }

exception Error of error

let error_to_string e = Printf.sprintf "%s at %s" e.message (Loc.to_string e.at)

type state = {
  input : string;
  filename : string;
  mutable pos : Loc.pos;
}

let make ?(filename = "<string>") input = { input; filename; pos = Loc.start }

let fail st msg =
  let at = Loc.span st.pos st.pos in
  let message =
    if st.filename = "<string>" then msg else st.filename ^ ": " ^ msg
  in
  raise (Error { message; at })

let eof st = st.pos.offset >= String.length st.input
let peek st = if eof st then '\000' else st.input.[st.pos.offset]

let next st =
  if eof st then fail st "unexpected end of input"
  else begin
    let c = st.input.[st.pos.offset] in
    st.pos <- Loc.advance st.pos c;
    c
  end

let skip st = ignore (next st)

let expect st c =
  let got = next st in
  if got <> c then fail st (Printf.sprintf "expected %C, found %C" c got)

let expect_string st s = String.iter (expect st) s

let looking_at st s =
  let n = String.length s in
  st.pos.offset + n <= String.length st.input
  && String.sub st.input st.pos.offset n = s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    skip st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let read_name st =
  if not (is_name_start (peek st)) then
    fail st (Printf.sprintf "expected a name, found %C" (peek st));
  let buf = Buffer.create 16 in
  while (not (eof st)) && is_name_char (peek st) do
    Buffer.add_char buf (next st)
  done;
  Buffer.contents buf

(* Character and entity references.  [read_reference] is called just
   after the '&' has been consumed. *)
let read_reference st =
  let name = ref (Buffer.create 8) in
  let buf = !name in
  let rec collect () =
    match next st with
    | ';' -> Buffer.contents buf
    | c when is_name_char c || c = '#' ->
        Buffer.add_char buf c;
        collect ()
    | c -> fail st (Printf.sprintf "malformed reference: unexpected %C" c)
  in
  let body = collect () in
  match body with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ when String.length body > 1 && body.[0] = '#' ->
      let code =
        try
          if body.[1] = 'x' || body.[1] = 'X' then
            int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
          else int_of_string (String.sub body 1 (String.length body - 1))
        with _ -> fail st ("malformed character reference: &" ^ body ^ ";")
      in
      if code < 0 || code > 0x10FFFF then
        fail st ("character reference out of range: &" ^ body ^ ";");
      (* Encode as UTF-8. *)
      let b = Buffer.create 4 in
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end;
      Buffer.contents b
  | _ -> fail st ("unknown entity: &" ^ body ^ ";")

let read_quoted st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then
    fail st "expected a quoted attribute value";
  let buf = Buffer.create 16 in
  let rec loop () =
    match next st with
    | c when c = quote -> Buffer.contents buf
    | '&' ->
        Buffer.add_string buf (read_reference st);
        loop ()
    | '<' -> fail st "'<' is not allowed in attribute values"
    | c ->
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let read_attributes st =
  let rec loop acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let start = st.pos in
      let name = read_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = read_quoted st in
      let attr =
        {
          Dom.attr_name = Dom.name_of_string name;
          attr_value = value;
          attr_span = Loc.span start st.pos;
        }
      in
      loop (attr :: acc)
    end
    else List.rev acc
  in
  loop []

let read_until st terminator what =
  let buf = Buffer.create 32 in
  let rec loop () =
    if looking_at st terminator then begin
      String.iter (fun _ -> skip st) terminator;
      Buffer.contents buf
    end
    else if eof st then fail st ("unterminated " ^ what)
    else begin
      Buffer.add_char buf (next st);
      loop ()
    end
  in
  loop ()

let read_comment st =
  let start = st.pos in
  expect_string st "<!--";
  let body = read_until st "-->" "comment" in
  Dom.Comment (body, Loc.span start st.pos)

let read_cdata st =
  let start = st.pos in
  expect_string st "<![CDATA[";
  let body = read_until st "]]>" "CDATA section" in
  Dom.Cdata (body, Loc.span start st.pos)

let read_pi st =
  let start = st.pos in
  expect_string st "<?";
  let target = read_name st in
  skip_space st;
  let body = read_until st "?>" "processing instruction" in
  Dom.Pi (target, String.trim body, Loc.span start st.pos)

let read_text st =
  let start = st.pos in
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof st || peek st = '<' then
      Dom.Text (Buffer.contents buf, Loc.span start st.pos)
    else
      match next st with
      | '&' ->
          Buffer.add_string buf (read_reference st);
          loop ()
      | c ->
          Buffer.add_char buf c;
          loop ()
  in
  loop ()

let rec read_element st =
  let start = st.pos in
  expect st '<';
  let name = read_name st in
  let attrs = read_attributes st in
  skip_space st;
  match peek st with
  | '/' ->
      skip st;
      expect st '>';
      {
        Dom.name = Dom.name_of_string name;
        attrs;
        children = [];
        span = Loc.span start st.pos;
      }
  | '>' ->
      skip st;
      let children = read_content st in
      expect_string st "</";
      skip_space st;
      let close = read_name st in
      if close <> name then
        fail st
          (Printf.sprintf "mismatched closing tag: expected </%s>, found </%s>"
             name close);
      skip_space st;
      expect st '>';
      {
        Dom.name = Dom.name_of_string name;
        attrs;
        children;
        span = Loc.span start st.pos;
      }
  | c -> fail st (Printf.sprintf "expected '>' or '/>', found %C" c)

and read_content st =
  let rec loop acc =
    if eof st then fail st "unexpected end of input inside an element"
    else if looking_at st "</" then List.rev acc
    else if looking_at st "<!--" then loop (read_comment st :: acc)
    else if looking_at st "<![CDATA[" then loop (read_cdata st :: acc)
    else if looking_at st "<?" then loop (read_pi st :: acc)
    else if peek st = '<' then loop (Dom.Element (read_element st) :: acc)
    else
      match read_text st with
      | Dom.Text ("", _) -> loop acc
      | t -> loop (t :: acc)
  in
  loop []

let skip_doctype st =
  expect_string st "<!DOCTYPE";
  (* Skip to the matching '>', tracking nested '[' ... ']' internal
     subsets but not interpreting them. *)
  let depth = ref 0 in
  let rec loop () =
    match next st with
    | '[' ->
        incr depth;
        loop ()
    | ']' ->
        decr depth;
        loop ()
    | '>' when !depth = 0 -> ()
    | _ -> loop ()
  in
  loop ()

let read_prolog st =
  let version = ref "1.0" in
  let encoding = ref None in
  let standalone = ref None in
  if looking_at st "<?xml" then begin
    expect_string st "<?xml";
    let attrs = read_attributes st in
    skip_space st;
    expect_string st "?>";
    List.iter
      (fun (a : Dom.attribute) ->
        match Dom.name_to_string a.attr_name with
        | "version" -> version := a.attr_value
        | "encoding" -> encoding := Some a.attr_value
        | "standalone" -> standalone := Some (a.attr_value = "yes")
        | other -> fail st ("unknown XML declaration attribute: " ^ other))
      attrs
  end;
  let rec misc () =
    skip_space st;
    if looking_at st "<!--" then begin
      ignore (read_comment st);
      misc ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      misc ()
    end
    else if looking_at st "<?" then begin
      ignore (read_pi st);
      misc ()
    end
  in
  misc ();
  (!version, !encoding, !standalone)

let finish st =
  skip_space st;
  let rec trailing () =
    if looking_at st "<!--" then begin
      ignore (read_comment st);
      skip_space st;
      trailing ()
    end
    else if looking_at st "<?" then begin
      ignore (read_pi st);
      skip_space st;
      trailing ()
    end
    else if not (eof st) then
      fail st (Printf.sprintf "trailing content after document root")
  in
  trailing ()

let doc_of_string_exn ?filename input =
  let st = make ?filename input in
  let version, encoding, standalone = read_prolog st in
  skip_space st;
  if eof st then fail st "document has no root element";
  let root = read_element st in
  finish st;
  { Dom.version; encoding; standalone; root }

let element_of_string_exn ?filename input =
  let st = make ?filename input in
  skip_space st;
  if looking_at st "<?xml" then begin
    let _ = read_prolog st in
    skip_space st
  end;
  let root = read_element st in
  finish st;
  root

let wrap f =
  match f () with v -> Ok v | exception Error e -> Result.Error e

let doc_of_string ?filename input =
  wrap (fun () -> doc_of_string_exn ?filename input)

let element_of_string ?filename input =
  wrap (fun () -> element_of_string_exn ?filename input)

let doc_of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> doc_of_string ~filename:path contents
  | exception Sys_error msg ->
      Result.Error { message = msg; at = Loc.dummy }

(* Expand references by re-scanning manually rather than reusing the
   parser's text reader, so that malformed references degrade to
   verbatim text instead of failing. *)
let unescape s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | Some j ->
            let body = String.sub s (!i + 1) (j - !i) in
            let expanded =
              let st = make body in
              match read_reference st with
              | v when eof st -> Some v
              | _ | (exception Error _) -> None
            in
            (match expanded with
            | Some v ->
                Buffer.add_string buf v;
                i := j + 1
            | None ->
                Buffer.add_char buf '&';
                incr i)
        | None ->
            Buffer.add_char buf '&';
            incr i
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

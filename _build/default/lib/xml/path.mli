(** Minimal XPath-like queries over {!Dom} trees.

    Grammar (a practical subset sufficient for the PDL query API):

    {v
    path      ::= ('/')? step ('/' step)*  |  '//' step ('/' step)*
    step      ::= axis? test pred*
    axis      ::= '//'                      (* descendant-or-self *)
    test      ::= NAME | '*' | 'text()' | '@' NAME
    pred      ::= '[' NAME '=' 'value' ']'          (* child text *)
                | '[@' NAME '=' 'value' ']'          (* attribute *)
                | '[' INT ']'                        (* 1-based index *)
    v}

    Example: [//Worker[@id='1']/PUDescriptor/Property[name='ARCH']].

    Matching is on local names (prefixes ignored), which matches PDL
    usage where subschema elements keep their local names. *)

type t

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val to_string : t -> string

val select : t -> Dom.element -> Dom.element list
(** Elements selected by the path, evaluated with the argument as
    context node. A leading ['/'] step matches the context node
    itself (root test). Paths ending in [@name] or [text()] select
    the elements {e owning} the attribute/text; use {!select_values}
    for the strings. *)

val select_values : t -> Dom.element -> string list
(** For paths ending in [@name]: the attribute values. For paths
    ending in [text()]: the text contents. For element paths: the
    {!Dom.text_content} of each selected element. *)

val select_one : t -> Dom.element -> Dom.element option
val query : string -> Dom.element -> Dom.element list
(** [query s el] = [select (parse s) el]. *)

val query_values : string -> Dom.element -> string list
val query_one : string -> Dom.element -> Dom.element option

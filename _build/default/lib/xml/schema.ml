type simple =
  | S_string
  | S_bool
  | S_int of { min : int option; max : int option }
  | S_decimal
  | S_enum of string list
  | S_pattern of string

type occurs = { min_occurs : int; max_occurs : int option }

let once = { min_occurs = 1; max_occurs = Some 1 }
let optional = { min_occurs = 0; max_occurs = Some 1 }
let many = { min_occurs = 0; max_occurs = None }
let at_least_one = { min_occurs = 1; max_occurs = None }

type particle =
  | P_elem of { el_name : string; el_type : string; occ : occurs }
  | P_seq of particle list * occurs
  | P_choice of particle list * occurs
  | P_any of occurs

type attr_decl = {
  a_name : string;
  a_type : simple;
  a_required : bool;
  a_default : string option;
}

type complex = {
  c_name : string;
  c_base : string option;
  c_attrs : attr_decl list;
  c_content : particle list;
  c_mixed : bool;
  c_text : simple option;
  c_open_attrs : bool;
}

type t = {
  id : string;
  version : string;
  target_ns : string;
  types : complex list;
  roots : (string * string) list;
}

let attr ?(required = false) ?default a_name a_type =
  { a_name; a_type; a_required = required; a_default = default }

let el ?(occ = once) el_name el_type = P_elem { el_name; el_type; occ }

let complex ?base ?(attrs = []) ?(content = []) ?(mixed = false) ?text
    ?(open_attrs = false) c_name =
  {
    c_name;
    c_base = base;
    c_attrs = attrs;
    c_content = content;
    c_mixed = mixed;
    c_text = text;
    c_open_attrs = open_attrs;
  }

let make ~id ?(version = "1.0") ?(target_ns = "") ~types ~roots () =
  { id; version; target_ns; types; roots }

(* --- builtins ----------------------------------------------------- *)

let builtin_simple = function
  | "string" -> Some S_string
  | "boolean" -> Some S_bool
  | "int" | "integer" -> Some (S_int { min = None; max = None })
  | "positiveInteger" -> Some (S_int { min = Some 1; max = None })
  | "nonNegativeInteger" -> Some (S_int { min = Some 0; max = None })
  | "decimal" -> Some S_decimal
  | _ -> None

let builtin_complex name =
  match name with
  | "anyType" ->
      Some (complex ~content:[ P_any many ] ~mixed:true ~open_attrs:true name)
  | _ -> (
      match builtin_simple name with
      | Some s -> Some (complex ~text:s ~open_attrs:false name)
      | None -> None)

(* --- registry ------------------------------------------------------ *)

type registry = { members : t list }

let registry base = { members = [ base ] }
let schemas reg = reg.members

let find_type reg name =
  let in_schema s = List.find_opt (fun c -> c.c_name = name) s.types in
  match List.find_map in_schema reg.members with
  | Some c -> Some c
  | None -> builtin_complex name

let add_subschema reg sub =
  if List.exists (fun s -> s.id = sub.id) reg.members then
    Error (Printf.sprintf "duplicate schema id %S" sub.id)
  else
    let clash =
      List.find_opt (fun c -> find_type reg c.c_name <> None) sub.types
    in
    match clash with
    | Some c ->
        Error
          (Printf.sprintf "schema %S redefines type %S already registered"
             sub.id c.c_name)
    | None -> Ok { members = reg.members @ [ sub ] }

let rec derives_from reg sub base =
  sub = base
  ||
  match find_type reg sub with
  | Some { c_base = Some b; _ } -> derives_from reg b base
  | _ -> false

(* Flattened view of a type: inheritance chain from base-most to the
   most-derived type. *)
let chain reg name =
  let rec go acc name guard =
    if List.mem name guard then None (* cycle *)
    else
      match find_type reg name with
      | None -> None
      | Some c -> (
          match c.c_base with
          | None -> Some (c :: acc)
          | Some b -> go (c :: acc) b (name :: guard))
  in
  go [] name []

type flat = {
  f_attrs : attr_decl list;
  f_content : particle list;
  f_mixed : bool;
  f_text : simple option;
  f_open_attrs : bool;
}

let flatten reg name =
  match chain reg name with
  | None -> None
  | Some types ->
      Some
        {
          f_attrs = List.concat_map (fun c -> c.c_attrs) types;
          f_content = List.concat_map (fun c -> c.c_content) types;
          f_mixed = List.exists (fun c -> c.c_mixed) types;
          f_text = List.find_map (fun c -> c.c_text) types;
          f_open_attrs = List.exists (fun c -> c.c_open_attrs) types;
        }

(* --- simple type validation --------------------------------------- *)

let check_simple simple value =
  match simple with
  | S_string -> Ok ()
  | S_bool -> (
      match value with
      | "true" | "false" | "0" | "1" -> Ok ()
      | _ -> Error (Printf.sprintf "%S is not a boolean" value))
  | S_int { min; max } -> (
      match int_of_string_opt (String.trim value) with
      | None -> Error (Printf.sprintf "%S is not an integer" value)
      | Some n ->
          let lo_ok = match min with Some m -> n >= m | None -> true in
          let hi_ok = match max with Some m -> n <= m | None -> true in
          if lo_ok && hi_ok then Ok ()
          else Error (Printf.sprintf "%d is out of range" n))
  | S_decimal -> (
      match float_of_string_opt (String.trim value) with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "%S is not a decimal" value))
  | S_enum allowed ->
      if List.mem value allowed then Ok ()
      else
        Error
          (Printf.sprintf "%S is not one of {%s}" value
             (String.concat ", " allowed))
  | S_pattern pat ->
      let re = Str.regexp pat in
      if Str.string_match re value 0 && Str.match_end () = String.length value
      then Ok ()
      else Error (Printf.sprintf "%S does not match pattern %S" value pat)

(* --- content model matching ---------------------------------------- *)

(* Matching yields the sequence of possible remainders; acceptance is
   any path leaving no unconsumed children.  [match_rep] stops
   expanding when an iteration consumes nothing, which keeps
   all-optional unbounded groups from looping forever. *)
let rec match_particle p (els : Dom.element list) : Dom.element list Seq.t =
  match p with
  | P_elem { el_name; occ; _ } ->
      let one = function
        | (c : Dom.element) :: rest when c.name.local = el_name ->
            Seq.return rest
        | _ -> Seq.empty
      in
      match_rep one occ els
  | P_any occ ->
      let one = function _ :: rest -> Seq.return rest | [] -> Seq.empty in
      match_rep one occ els
  | P_seq (ps, occ) -> match_rep (match_list ps) occ els
  | P_choice (ps, occ) ->
      let one els =
        Seq.concat_map (fun p -> match_particle p els) (List.to_seq ps)
      in
      match_rep one occ els

and match_list ps els =
  match ps with
  | [] -> Seq.return els
  | p :: rest ->
      Seq.concat_map (fun els' -> match_list rest els') (match_particle p els)

and match_rep one occ els =
  let rec go k els () =
    let here () =
      if k >= occ.min_occurs then Seq.Cons (els, Seq.empty) else Seq.Nil
    in
    let can_repeat =
      match occ.max_occurs with Some m -> k < m | None -> true
    in
    if not can_repeat then here ()
    else
      let more =
        Seq.concat_map
          (fun els' -> if els' == els then Seq.empty else go (k + 1) els')
          (one els)
      in
      Seq.append (fun () -> here ()) more ()
  in
  go 0 els

let content_matches particles els =
  Seq.exists (fun rest -> rest = []) (match_list particles els)

let rec particle_to_string = function
  | P_elem { el_name; occ; _ } -> el_name ^ occurs_to_string occ
  | P_seq (ps, occ) ->
      "(" ^ String.concat ", " (List.map particle_to_string ps) ^ ")"
      ^ occurs_to_string occ
  | P_choice (ps, occ) ->
      "(" ^ String.concat " | " (List.map particle_to_string ps) ^ ")"
      ^ occurs_to_string occ
  | P_any occ -> "*" ^ occurs_to_string occ

and occurs_to_string occ =
  match (occ.min_occurs, occ.max_occurs) with
  | 1, Some 1 -> ""
  | 0, Some 1 -> "?"
  | 0, None -> "*"
  | 1, None -> "+"
  | lo, Some hi -> Printf.sprintf "{%d,%d}" lo hi
  | lo, None -> Printf.sprintf "{%d,}" lo

(* Element name -> declared type, as read off the content model.  Used
   to pick the type a child is validated against. *)
let rec elem_types acc = function
  | P_elem { el_name; el_type; _ } -> (el_name, el_type) :: acc
  | P_seq (ps, _) | P_choice (ps, _) -> List.fold_left elem_types acc ps
  | P_any _ -> acc

(* --- validation ----------------------------------------------------- *)

type error = { message : string; at : Loc.span; path : string }

let pp_error ppf e =
  Format.fprintf ppf "%s: %s (%a)" e.path e.message Loc.pp e.at

let error_to_string e = Format.asprintf "%a" pp_error e

let is_blank s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

let is_ns_decl (a : Dom.attribute) =
  a.attr_name.prefix = "xmlns" || (a.attr_name.prefix = "" && a.attr_name.local = "xmlns")

let is_xsi_attr (a : Dom.attribute) = a.attr_name.prefix = "xsi"

let validate_attrs flat path (el : Dom.element) errors =
  let errors = ref errors in
  let err at fmt =
    Printf.ksprintf (fun message -> errors := { message; at; path } :: !errors) fmt
  in
  List.iter
    (fun decl ->
      match Dom.attr el decl.a_name with
      | Some v -> (
          match check_simple decl.a_type v with
          | Ok () -> ()
          | Error msg -> err el.span "attribute %S: %s" decl.a_name msg)
      | None -> if decl.a_required then err el.span "missing required attribute %S" decl.a_name)
    flat.f_attrs;
  if not flat.f_open_attrs then
    List.iter
      (fun (a : Dom.attribute) ->
        if (not (is_ns_decl a)) && not (is_xsi_attr a) then
          if
            not
              (List.exists
                 (fun d -> d.a_name = Dom.name_to_string a.attr_name)
                 flat.f_attrs)
          then err a.attr_span "undeclared attribute %S" (Dom.name_to_string a.attr_name))
      el.attrs;
  !errors

let rec validate_element reg ~type_name ~path (el : Dom.element) errors =
  let err at fmt =
    Printf.ksprintf (fun message -> { message; at; path } :: errors) fmt
  in
  (* xsi:type substitution: the instance may downcast the declared
     type to one deriving from it. *)
  let effective =
    match Dom.attr el "xsi:type" with
    | None -> Ok type_name
    | Some v ->
        let named = (Dom.name_of_string v).local in
        if find_type reg named = None then
          Error
            (Printf.sprintf "xsi:type references unknown type %S" named)
        else if derives_from reg named type_name then Ok named
        else
          Error
            (Printf.sprintf "xsi:type %S does not derive from declared type %S"
               named type_name)
  in
  match effective with
  | Error msg -> err el.span "%s" msg
  | Ok type_name when type_name = "anyType" -> errors
  | Ok type_name -> (
      match flatten reg type_name with
      | None -> err el.span "unknown or cyclic type %S" type_name
      | Some flat -> (
          let errors = validate_attrs flat path el errors in
          let children = Dom.child_elements el in
          match flat.f_text with
          | Some simple -> (
              let errors =
                match children with
                | [] -> errors
                | c :: _ ->
                    { message =
                        Printf.sprintf
                          "type %S has simple content; element children are \
                           not allowed"
                          type_name;
                      at = c.span;
                      path;
                    }
                    :: errors
              in
              match check_simple simple (Dom.text_content el) with
              | Ok () -> errors
              | Error msg ->
                  { message = Printf.sprintf "content: %s" msg;
                    at = el.span;
                    path;
                  }
                  :: errors)
          | None ->
              let errors =
                if flat.f_mixed then errors
                else
                  List.fold_left
                    (fun errors -> function
                      | Dom.Text (s, at) when not (is_blank s) ->
                          { message =
                              Printf.sprintf
                                "unexpected character data %S in \
                                 element-only type %S"
                                (String.trim s) type_name;
                            at;
                            path;
                          }
                          :: errors
                      | _ -> errors)
                    errors el.children
              in
              let errors =
                if content_matches flat.f_content children then errors
                else
                  { message =
                      Printf.sprintf
                        "children [%s] do not match the content model [%s] \
                         of type %S"
                        (String.concat "; "
                           (List.map
                              (fun (c : Dom.element) -> c.name.local)
                              children))
                        (String.concat "; "
                           (List.map particle_to_string flat.f_content))
                        type_name;
                    at = el.span;
                    path;
                  }
                  :: errors
              in
              let by_name =
                List.fold_left elem_types [] flat.f_content
              in
              let counts = Hashtbl.create 8 in
              List.fold_left
                (fun errors (child : Dom.element) ->
                  let n = child.name.local in
                  let k =
                    (Hashtbl.find_opt counts n |> Option.value ~default:0) + 1
                  in
                  Hashtbl.replace counts n k;
                  match List.assoc_opt n by_name with
                  | None -> errors (* matched P_any, or already reported *)
                  | Some child_ty ->
                      let child_path =
                        if path = "" then n
                        else Printf.sprintf "%s/%s[%d]" path n k
                      in
                      validate_element reg ~type_name:child_ty
                        ~path:child_path child errors)
                errors children))

let validate reg (root : Dom.element) =
  let root = Dom.strip_layout root in
  let all_roots = List.concat_map (fun s -> s.roots) reg.members in
  match List.assoc_opt root.name.local all_roots with
  | None ->
      [
        {
          message =
            Printf.sprintf "element %S is not a declared root (expected %s)"
              root.name.local
              (String.concat " or "
                 (List.map (fun (n, _) -> Printf.sprintf "%S" n) all_roots));
          at = root.span;
          path = root.name.local;
        };
      ]
  | Some ty ->
      List.rev
        (validate_element reg ~type_name:ty ~path:root.name.local root [])

let validate_against reg ~type_name (root : Dom.element) =
  let root = Dom.strip_layout root in
  List.rev (validate_element reg ~type_name ~path:root.name.local root [])

(* --- schema well-formedness ---------------------------------------- *)

let check reg schema =
  let ( let* ) = Result.bind in
  let* merged = add_subschema reg schema in
  let check_ty_ref where name =
    if find_type merged name = None then
      Error (Printf.sprintf "%s references unknown type %S" where name)
    else Ok ()
  in
  let rec check_particle where = function
    | P_elem { el_type; _ } -> check_ty_ref where el_type
    | P_seq (ps, _) | P_choice (ps, _) ->
        List.fold_left
          (fun acc p -> Result.bind acc (fun () -> check_particle where p))
          (Ok ()) ps
    | P_any _ -> Ok ()
  in
  let check_type c =
    let where = Printf.sprintf "type %S" c.c_name in
    let* () =
      match c.c_base with
      | Some b -> check_ty_ref where b
      | None -> Ok ()
    in
    let* () =
      if chain merged c.c_name = None then
        Error (Printf.sprintf "type %S has a cyclic extension chain" c.c_name)
      else Ok ()
    in
    let* () =
      if c.c_text <> None && c.c_content <> [] then
        Error
          (Printf.sprintf "type %S mixes simple content and child elements"
             c.c_name)
      else Ok ()
    in
    List.fold_left
      (fun acc p -> Result.bind acc (fun () -> check_particle where p))
      (Ok ()) c.c_content
  in
  let* () =
    List.fold_left
      (fun acc c -> Result.bind acc (fun () -> check_type c))
      (Ok ()) schema.types
  in
  let* () =
    List.fold_left
      (fun acc (n, ty) ->
        Result.bind acc (fun () ->
            check_ty_ref (Printf.sprintf "root %S" n) ty))
      (Ok ()) schema.roots
  in
  Ok merged

(* --- XML form -------------------------------------------------------- *)

let occurs_of_el (el : Dom.element) =
  let min_occurs =
    match Dom.attr el "minOccurs" with
    | Some v -> int_of_string v
    | None -> 1
  in
  let max_occurs =
    match Dom.attr el "maxOccurs" with
    | Some "unbounded" -> None
    | Some v -> Some (int_of_string v)
    | None -> Some 1
  in
  { min_occurs; max_occurs }

let of_xml root =
  let ( let* ) = Result.bind in
  let root = Dom.strip_layout root in
  if root.name.local <> "schema" then
    Error (Printf.sprintf "expected <schema>, found <%s>" root.name.local)
  else
    let* id =
      match Dom.attr root "id" with
      | Some id -> Ok id
      | None -> Error "<schema> requires an id attribute"
    in
    let version = Option.value ~default:"1.0" (Dom.attr root "version") in
    let target_ns =
      Option.value ~default:"" (Dom.attr root "targetNamespace")
    in
    (* Named simple types defined in this document. *)
    let simples = Hashtbl.create 8 in
    let parse_simple_body (el : Dom.element) =
      let enums =
        Dom.find_children el "enumeration"
        |> List.filter_map (fun e -> Dom.attr e "value")
      in
      if enums <> [] then Ok (S_enum enums)
      else
        match Dom.find_child el "pattern" with
        | Some p -> (
            match Dom.attr p "value" with
            | Some v -> Ok (S_pattern v)
            | None -> Error "<pattern> requires a value attribute")
        | None -> (
            match Dom.find_child el "restriction" with
            | Some r -> (
                match Dom.attr r "base" with
                | Some ("int" | "integer") ->
                    let get k =
                      Option.map int_of_string (Dom.attr r k)
                    in
                    Ok (S_int { min = get "min"; max = get "max" })
                | Some other ->
                    Error
                      (Printf.sprintf "unsupported restriction base %S" other)
                | None -> Error "<restriction> requires a base attribute")
            | None -> Error "empty <simpleType>")
    in
    let resolve_simple name =
      match Hashtbl.find_opt simples name with
      | Some s -> Ok s
      | None -> (
          match builtin_simple name with
          | Some s -> Ok s
          | None -> Error (Printf.sprintf "unknown simple type %S" name))
    in
    let parse_attr (el : Dom.element) =
      let* a_name =
        match Dom.attr el "name" with
        | Some n -> Ok n
        | None -> Error "<attribute> requires a name"
      in
      let* a_type =
        match Dom.attr el "type" with
        | Some t -> resolve_simple t
        | None -> Ok S_string
      in
      Ok
        {
          a_name;
          a_type;
          a_required = Dom.attr el "use" = Some "required";
          a_default = Dom.attr el "default";
        }
    in
    let rec parse_particle (el : Dom.element) =
      let occ = occurs_of_el el in
      match el.name.local with
      | "element" ->
          let* el_name =
            match Dom.attr el "name" with
            | Some n -> Ok n
            | None -> Error "<element> requires a name"
          in
          let el_type =
            Option.value ~default:"string" (Dom.attr el "type")
          in
          Ok (P_elem { el_name; el_type; occ })
      | "sequence" ->
          let* ps = parse_particles (Dom.child_elements el) in
          Ok (P_seq (ps, occ))
      | "choice" ->
          let* ps = parse_particles (Dom.child_elements el) in
          Ok (P_choice (ps, occ))
      | "any" -> Ok (P_any occ)
      | other -> Error (Printf.sprintf "unexpected particle <%s>" other)
    and parse_particles els =
      List.fold_left
        (fun acc el ->
          let* ps = acc in
          let* p = parse_particle el in
          Ok (ps @ [ p ]))
        (Ok []) els
    in
    let parse_complex (el : Dom.element) =
      let* c_name =
        match Dom.attr el "name" with
        | Some n -> Ok n
        | None -> Error "<complexType> requires a name"
      in
      let base = Dom.attr el "extends" in
      let mixed = Dom.attr el "mixed" = Some "true" in
      let open_attrs = Dom.attr el "open" = Some "true" in
      let* attrs =
        List.fold_left
          (fun acc a ->
            let* attrs = acc in
            let* attr = parse_attr a in
            Ok (attrs @ [ attr ]))
          (Ok [])
          (Dom.find_children el "attribute")
      in
      let* text =
        match Dom.find_child el "text" with
        | Some te ->
            let* s =
              resolve_simple
                (Option.value ~default:"string" (Dom.attr te "type"))
            in
            Ok (Some s)
        | None -> Ok None
      in
      let* content =
        let particles =
          List.filter
            (fun (c : Dom.element) ->
              List.mem c.name.local [ "sequence"; "choice"; "element"; "any" ])
            (Dom.child_elements el)
        in
        parse_particles particles
      in
      Ok
        {
          c_name;
          c_base = base;
          c_attrs = attrs;
          c_content = content;
          c_mixed = mixed;
          c_text = text;
          c_open_attrs = open_attrs;
        }
    in
    (* First pass: named simple types (so later references resolve). *)
    let* () =
      List.fold_left
        (fun acc (el : Dom.element) ->
          let* () = acc in
          if el.name.local <> "simpleType" then Ok ()
          else
            let* name =
              match Dom.attr el "name" with
              | Some n -> Ok n
              | None -> Error "<simpleType> requires a name"
            in
            let* s = parse_simple_body el in
            Hashtbl.replace simples name s;
            Ok ())
        (Ok ())
        (Dom.child_elements root)
    in
    let* types, roots =
      List.fold_left
        (fun acc (el : Dom.element) ->
          let* types, roots = acc in
          match el.name.local with
          | "simpleType" ->
              (* Also usable as an element type: simple content. *)
              let name = Option.get (Dom.attr el "name") in
              let s = Hashtbl.find simples name in
              Ok (types @ [ complex ~text:s name ], roots)
          | "complexType" ->
              let* c = parse_complex el in
              Ok (types @ [ c ], roots)
          | "element" ->
              let* n =
                match Dom.attr el "name" with
                | Some n -> Ok n
                | None -> Error "top-level <element> requires a name"
              in
              let ty = Option.value ~default:"anyType" (Dom.attr el "type") in
              Ok (types, roots @ [ (n, ty) ])
          | other ->
              Error (Printf.sprintf "unexpected <%s> under <schema>" other))
        (Ok ([], []))
        (Dom.child_elements root)
    in
    Ok { id; version; target_ns; types; roots }

let of_string s =
  match Decode.element_of_string s with
  | Error e -> Error (Decode.error_to_string e)
  | Ok el -> of_xml el

let to_xml schema =
  let occurs_attrs occ =
    (if occ.min_occurs = 1 then []
     else [ ("minOccurs", string_of_int occ.min_occurs) ])
    @
    match occ.max_occurs with
    | Some 1 -> []
    | Some m -> [ ("maxOccurs", string_of_int m) ]
    | None -> [ ("maxOccurs", "unbounded") ]
  in
  let simple_nodes = function
    | S_string -> (Some "string", [])
    | S_bool -> (Some "boolean", [])
    | S_decimal -> (Some "decimal", [])
    | S_int { min = None; max = None } -> (Some "int", [])
    | S_int { min; max } ->
        let attrs =
          [ ("base", "int") ]
          @ (match min with Some m -> [ ("min", string_of_int m) ] | None -> [])
          @
          match max with Some m -> [ ("max", string_of_int m) ] | None -> []
        in
        (None, [ Dom.e ~attrs "restriction" [] ])
    | S_enum vs ->
        ( None,
          List.map (fun v -> Dom.e ~attrs:[ ("value", v) ] "enumeration" []) vs
        )
    | S_pattern p -> (None, [ Dom.e ~attrs:[ ("value", p) ] "pattern" [] ])
  in
  let rec particle_node = function
    | P_elem { el_name; el_type; occ } ->
        Dom.e
          ~attrs:([ ("name", el_name); ("type", el_type) ] @ occurs_attrs occ)
          "element" []
    | P_seq (ps, occ) ->
        Dom.e ~attrs:(occurs_attrs occ) "sequence" (List.map particle_node ps)
    | P_choice (ps, occ) ->
        Dom.e ~attrs:(occurs_attrs occ) "choice" (List.map particle_node ps)
    | P_any occ -> Dom.e ~attrs:(occurs_attrs occ) "any" []
  in
  let attr_node a =
    let ty_name, extra = simple_nodes a.a_type in
    let attrs =
      [ ("name", a.a_name) ]
      @ (match ty_name with Some t -> [ ("type", t) ] | None -> [])
      @ (if a.a_required then [ ("use", "required") ] else [])
      @ match a.a_default with Some d -> [ ("default", d) ] | None -> []
    in
    (* Inline simple types in attributes degrade to string in the XML
       form; programmatic schemas keep full fidelity. *)
    ignore extra;
    Dom.e ~attrs "attribute" []
  in
  let type_node c =
    match c.c_text with
    | Some s when c.c_base = None && c.c_attrs = [] ->
        let ty_name, extra = simple_nodes s in
        (match ty_name with
        | Some _ when extra = [] ->
            Dom.e
              ~attrs:[ ("name", c.c_name) ]
              "complexType"
              [ Dom.e ~attrs:[ ("type", Option.get ty_name) ] "text" [] ]
        | _ -> Dom.e ~attrs:[ ("name", c.c_name) ] "simpleType" extra)
    | _ ->
        let attrs =
          [ ("name", c.c_name) ]
          @ (match c.c_base with Some b -> [ ("extends", b) ] | None -> [])
          @ (if c.c_mixed then [ ("mixed", "true") ] else [])
          @ if c.c_open_attrs then [ ("open", "true") ] else []
        in
        let text_node =
          match c.c_text with
          | Some s ->
              let ty_name, _ = simple_nodes s in
              [ Dom.e
                  ~attrs:
                    [ ("type", Option.value ~default:"string" ty_name) ]
                  "text" [] ]
          | None -> []
        in
        Dom.e ~attrs "complexType"
          (List.map particle_node c.c_content
          @ text_node
          @ List.map attr_node c.c_attrs)
  in
  let root_node (n, ty) =
    Dom.e ~attrs:[ ("name", n); ("type", ty) ] "element" []
  in
  Dom.elem
    ~attrs:
      ([ ("id", schema.id); ("version", schema.version) ]
      @
      if schema.target_ns = "" then []
      else [ ("targetNamespace", schema.target_ns) ])
    "schema"
    (List.map type_node schema.types @ List.map root_node schema.roots)

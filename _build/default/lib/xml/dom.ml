type name = { prefix : string; local : string }
type attribute = { attr_name : name; attr_value : string; attr_span : Loc.span }

type node =
  | Element of element
  | Text of string * Loc.span
  | Cdata of string * Loc.span
  | Comment of string * Loc.span
  | Pi of string * string * Loc.span

and element = {
  name : name;
  attrs : attribute list;
  children : node list;
  span : Loc.span;
}

type doc = {
  version : string;
  encoding : string option;
  standalone : bool option;
  root : element;
}

let name ?(prefix = "") local = { prefix; local }

let name_to_string n =
  if n.prefix = "" then n.local else n.prefix ^ ":" ^ n.local

let name_of_string s =
  match String.index_opt s ':' with
  | None -> { prefix = ""; local = s }
  | Some i ->
      {
        prefix = String.sub s 0 i;
        local = String.sub s (i + 1) (String.length s - i - 1);
      }

let equal_name a b = a.prefix = b.prefix && a.local = b.local

let elem ?(prefix = "") ?(attrs = []) local children =
  let attr (k, v) =
    { attr_name = name_of_string k; attr_value = v; attr_span = Loc.dummy }
  in
  {
    name = { prefix; local };
    attrs = List.map attr attrs;
    children;
    span = Loc.dummy;
  }

let e ?prefix ?attrs local children = Element (elem ?prefix ?attrs local children)
let text s = Text (s, Loc.dummy)
let comment s = Comment (s, Loc.dummy)
let doc root = { version = "1.0"; encoding = Some "UTF-8"; standalone = None; root }

let attr el k =
  let key = name_of_string k in
  let matches a = equal_name a.attr_name key in
  match List.find_opt matches el.attrs with
  | Some a -> Some a.attr_value
  | None -> None

let attr_exn el k =
  match attr el k with Some v -> v | None -> raise Not_found

let child_elements el =
  List.filter_map (function Element e -> Some e | _ -> None) el.children

let find_children el local =
  List.filter (fun (c : element) -> c.name.local = local) (child_elements el)

let find_child el local =
  match find_children el local with [] -> None | c :: _ -> Some c

let rec text_content el =
  let piece = function
    | Text (s, _) | Cdata (s, _) -> s
    | Element e -> text_content e
    | Comment _ | Pi _ -> ""
  in
  String.concat "" (List.map piece el.children)

let own_text el =
  let piece = function Text (s, _) | Cdata (s, _) -> s | _ -> "" in
  String.concat "" (List.map piece el.children)

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

let rec strip_layout el =
  let keep = function
    | Comment _ | Pi _ -> None
    | Text (s, _) when is_blank s -> None
    | Text _ as n -> Some n
    | Cdata (s, sp) -> Some (Text (s, sp))
    | Element e -> Some (Element (strip_layout e))
  in
  { el with children = List.filter_map keep el.children }

let rec map_elements f el =
  let child = function
    | Element e -> Element (map_elements f e)
    | n -> n
  in
  f { el with children = List.map child el.children }

let rec fold_elements f acc el =
  let acc = f acc el in
  List.fold_left
    (fun acc -> function Element e -> fold_elements f acc e | _ -> acc)
    acc el.children

let equal_attribute a b =
  equal_name a.attr_name b.attr_name && a.attr_value = b.attr_value

let rec equal_element a b =
  equal_name a.name b.name
  && List.length a.attrs = List.length b.attrs
  && List.for_all2 equal_attribute
       (List.sort compare_attr a.attrs)
       (List.sort compare_attr b.attrs)
  && equal_children a.children b.children

and compare_attr a b =
  compare (a.attr_name, a.attr_value) (b.attr_name, b.attr_value)

and significant = function
  | Comment _ | Pi _ -> false
  | Text (s, _) | Cdata (s, _) -> not (is_blank s)
  | Element _ -> true

and equal_node a b =
  match (a, b) with
  | Element x, Element y -> equal_element x y
  | (Text (x, _) | Cdata (x, _)), (Text (y, _) | Cdata (y, _)) -> x = y
  | Comment (x, _), Comment (y, _) -> x = y
  | Pi (t1, c1, _), Pi (t2, c2, _) -> t1 = t2 && c1 = c2
  | _ -> false

and coalesce_text nodes =
  (* Adjacent text/CDATA merge on any reparse, so equality treats
     them as one node. *)
  match nodes with
  | (Text (s1, sp1) | Cdata (s1, sp1)) :: (Text (s2, _) | Cdata (s2, _)) :: rest
    ->
      coalesce_text (Text (s1 ^ s2, sp1) :: rest)
  | n :: rest -> n :: coalesce_text rest
  | [] -> []

and equal_children a b =
  (* Coalesce before dropping blanks: a blank text node adjacent to a
     non-blank one merges into it on reparse. *)
  let clean l =
    List.filter significant
      (coalesce_text (List.filter (function Comment _ | Pi _ -> false | _ -> true) l))
  in
  let a = clean a and b = clean b in
  List.length a = List.length b && List.for_all2 equal_node a b

let pp_name ppf n = Format.pp_print_string ppf (name_to_string n)

let rec pp_element ppf el =
  let pp_attr ppf a =
    Format.fprintf ppf " %a=%S" pp_name a.attr_name a.attr_value
  in
  let pp_node ppf = function
    | Element e -> pp_element ppf e
    | Text (s, _) -> Format.pp_print_string ppf s
    | Cdata (s, _) -> Format.fprintf ppf "<![CDATA[%s]]>" s
    | Comment (s, _) -> Format.fprintf ppf "<!--%s-->" s
    | Pi (t, c, _) -> Format.fprintf ppf "<?%s %s?>" t c
  in
  match el.children with
  | [] ->
      Format.fprintf ppf "<%a%a/>" pp_name el.name
        (Format.pp_print_list pp_attr) el.attrs
  | children ->
      Format.fprintf ppf "<%a%a>%a</%a>" pp_name el.name
        (Format.pp_print_list pp_attr)
        el.attrs
        (Format.pp_print_list pp_node)
        children pp_name el.name

type pred =
  | Attr_eq of string * string
  | Child_text_eq of string * string
  | Index of int

type test = Name of string | Star | Text | Attr of string
type step = { descendant : bool; test : test; preds : pred list }
type t = { rooted : bool; steps : step list }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- parsing ----------------------------------------------------- *)

type cursor = { src : string; mutable i : int }

let peek c = if c.i >= String.length c.src then '\000' else c.src.[c.i]
let advance c = c.i <- c.i + 1
let eof c = c.i >= String.length c.src

let looking_at c s =
  let n = String.length s in
  c.i + n <= String.length c.src && String.sub c.src c.i n = s

let eat c s =
  if looking_at c s then c.i <- c.i + String.length s
  else fail "expected %S at offset %d in path %S" s c.i c.src

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.' || ch = ':'

let read_name c =
  let start = c.i in
  while (not (eof c)) && is_name_char (peek c) do
    advance c
  done;
  if c.i = start then fail "expected a name at offset %d in path %S" start c.src;
  String.sub c.src start (c.i - start)

let read_quoted c =
  let quote = peek c in
  if quote <> '\'' && quote <> '"' then
    fail "expected a quoted value at offset %d in path %S" c.i c.src;
  advance c;
  let start = c.i in
  while (not (eof c)) && peek c <> quote do
    advance c
  done;
  if eof c then fail "unterminated quoted value in path %S" c.src;
  let v = String.sub c.src start (c.i - start) in
  advance c;
  v

let read_pred c =
  eat c "[";
  let pred =
    if peek c = '@' then begin
      advance c;
      let n = read_name c in
      eat c "=";
      Attr_eq (n, read_quoted c)
    end
    else if peek c >= '0' && peek c <= '9' then begin
      let start = c.i in
      while peek c >= '0' && peek c <= '9' do
        advance c
      done;
      Index (int_of_string (String.sub c.src start (c.i - start)))
    end
    else begin
      let n = read_name c in
      eat c "=";
      Child_text_eq (n, read_quoted c)
    end
  in
  eat c "]";
  pred

let read_step c ~descendant =
  let test =
    if peek c = '*' then begin
      advance c;
      Star
    end
    else if peek c = '@' then begin
      advance c;
      Attr (read_name c)
    end
    else
      let n = read_name c in
      if n = "text" && looking_at c "()" then begin
        eat c "()";
        Text
      end
      else Name n
  in
  let rec preds acc =
    if peek c = '[' then preds (read_pred c :: acc) else List.rev acc
  in
  { descendant; test; preds = preds [] }

let parse src =
  if src = "" then fail "empty path";
  let c = { src; i = 0 } in
  let rooted = (not (looking_at c "//")) && peek c = '/' in
  if rooted then advance c;
  let rec steps acc =
    let descendant = looking_at c "//" in
    if descendant then eat c "//";
    let step = read_step c ~descendant in
    let acc = step :: acc in
    if eof c then List.rev acc
    else if looking_at c "//" then steps acc
    else begin
      eat c "/";
      steps acc
    end
  in
  { rooted; steps = steps [] }

let to_string t =
  let test_to_string = function
    | Name n -> n
    | Star -> "*"
    | Text -> "text()"
    | Attr n -> "@" ^ n
  in
  let pred_to_string = function
    | Attr_eq (n, v) -> Printf.sprintf "[@%s='%s']" n v
    | Child_text_eq (n, v) -> Printf.sprintf "[%s='%s']" n v
    | Index i -> Printf.sprintf "[%d]" i
  in
  let step_to_string s =
    (if s.descendant then "//" else "")
    ^ test_to_string s.test
    ^ String.concat "" (List.map pred_to_string s.preds)
  in
  let body =
    List.mapi
      (fun i s ->
        if i = 0 then step_to_string s
        else if s.descendant then step_to_string s
        else "/" ^ step_to_string s)
      t.steps
    |> String.concat ""
  in
  if t.rooted then "/" ^ body else body

(* --- evaluation -------------------------------------------------- *)

let rec descendants_or_self (el : Dom.element) =
  el
  :: List.concat_map
       (function Dom.Element e -> descendants_or_self e | _ -> [])
       el.children

let matches_test test (el : Dom.element) =
  match test with
  | Name n -> el.name.local = n
  | Star -> true
  | Text -> Dom.own_text el <> ""
  | Attr n -> Dom.attr el n <> None

let matches_pred (el : Dom.element) = function
  | Attr_eq (n, v) -> Dom.attr el n = Some v
  | Child_text_eq (n, v) -> (
      match Dom.find_child el n with
      | Some c -> String.trim (Dom.text_content c) = v
      | None -> false)
  | Index _ -> true (* handled positionally below *)

let apply_preds preds els =
  let non_positional =
    List.filter
      (fun el -> List.for_all (matches_pred el) preds)
      els
  in
  let positional =
    List.filter_map (function Index i -> Some i | _ -> None) preds
  in
  List.fold_left
    (fun els i ->
      match List.nth_opt els (i - 1) with Some e -> [ e ] | None -> [])
    non_positional positional

let apply_step ~first ~rooted step (ctx : Dom.element) =
  let candidates =
    match step.test with
    | Attr _ | Text ->
        if step.descendant then descendants_or_self ctx else [ ctx ]
    | Name _ | Star ->
        if step.descendant then descendants_or_self ctx
        else if first && rooted then [ ctx ]
        else Dom.child_elements ctx
  in
  apply_preds step.preds (List.filter (matches_test step.test) candidates)

let dedup els =
  (* Physical-identity dedup preserves document order; descendant
     steps can select the same element through several contexts. *)
  let seen = ref [] in
  List.filter
    (fun el ->
      if List.memq el !seen then false
      else begin
        seen := el :: !seen;
        true
      end)
    els

let select t root =
  let rec go first ctxs = function
    | [] -> ctxs
    | step :: rest ->
        let next =
          dedup
            (List.concat_map (apply_step ~first ~rooted:t.rooted step) ctxs)
        in
        go false next rest
  in
  go true [ root ] t.steps

let select_values t root =
  let extract =
    match List.rev t.steps with
    | { test = Attr n; _ } :: _ ->
        fun el -> Option.to_list (Dom.attr el n)
    | { test = Text; _ } :: _ -> fun el -> [ Dom.own_text el ]
    | _ -> fun el -> [ Dom.text_content el ]
  in
  List.concat_map extract (select t root)

let select_one t root = match select t root with [] -> None | e :: _ -> Some e
let query s root = select (parse s) root
let query_values s root = select_values (parse s) root
let query_one s root = select_one (parse s) root

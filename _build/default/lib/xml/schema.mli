(** XSD-subset schema definition and validation.

    The paper derives an XML Schema Definition from the hierarchical
    machine model and relies on three XSD mechanisms: {e schema
    inheritance} (complex-type extension), {e XML entity polymorphism}
    ([xsi:type] substitution of a derived type for a declared base
    type), and {e identified, versioned subschemas} that vendors or
    tool developers can add for new platforms. This module implements
    exactly that subset:

    - simple types: string, boolean, integer (with bounds), decimal,
      enumerations and regex patterns;
    - complex types with attribute declarations and a content model of
      sequences, choices and wildcards with occurrence bounds;
    - complex-type extension ([extends]) with attribute and content
      inheritance;
    - [xsi:type] downcasts checked against the derivation chain;
    - schema registries that merge a base schema with any number of
      identified subschemas.

    Schemas can be built programmatically or loaded from a compact
    XML dialect (see {!of_xml}). *)

(** {1 Types} *)

type simple =
  | S_string
  | S_bool
  | S_int of { min : int option; max : int option }
  | S_decimal
  | S_enum of string list
  | S_pattern of string  (** anchored regular expression, {!Str} syntax *)

type occurs = { min_occurs : int; max_occurs : int option }
(** [max_occurs = None] means unbounded. *)

val once : occurs
val optional : occurs

val many : occurs
(** 0..unbounded. *)

val at_least_one : occurs

type particle =
  | P_elem of { el_name : string; el_type : string; occ : occurs }
  | P_seq of particle list * occurs
  | P_choice of particle list * occurs
  | P_any of occurs  (** matches any element, contents unchecked *)

type attr_decl = {
  a_name : string;
  a_type : simple;
  a_required : bool;
  a_default : string option;
}

type complex = {
  c_name : string;
  c_base : string option;  (** extension base (another complex type) *)
  c_attrs : attr_decl list;
  c_content : particle list;  (** implicit top-level sequence *)
  c_mixed : bool;  (** character data allowed between children *)
  c_text : simple option;  (** simple content; excludes child elements *)
  c_open_attrs : bool;  (** tolerate undeclared attributes *)
}

type t = {
  id : string;  (** unique schema identifier *)
  version : string;
  target_ns : string;  (** informational *)
  types : complex list;
  roots : (string * string) list;  (** allowed (root element, type) *)
}

(** {1 Construction} *)

val attr : ?required:bool -> ?default:string -> string -> simple -> attr_decl
val el : ?occ:occurs -> string -> string -> particle
(** [el name ty] is an element particle occurring exactly once. *)

val complex :
  ?base:string ->
  ?attrs:attr_decl list ->
  ?content:particle list ->
  ?mixed:bool ->
  ?text:simple ->
  ?open_attrs:bool ->
  string ->
  complex

val make :
  id:string -> ?version:string -> ?target_ns:string ->
  types:complex list -> roots:(string * string) list -> unit -> t

(** {1 Registries} *)

type registry
(** A base schema merged with zero or more subschemas. Lookups see
    the union of all types; roots come from every member. *)

val registry : t -> registry
val add_subschema : registry -> t -> (registry, string) result
(** Fails on duplicate schema ids or conflicting type names. *)

val schemas : registry -> t list
val find_type : registry -> string -> complex option
val derives_from : registry -> string -> string -> bool
(** [derives_from reg sub base]: does [sub]'s extension chain reach
    [base]? Reflexive. *)

(** {1 Validation} *)

type error = { message : string; at : Loc.span; path : string }
(** [path] is a ['/']-separated element path like
    ["Master/Worker[2]/PUDescriptor"]. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val check : registry -> t -> (registry, string) result
(** Well-formedness of a schema against a registry: every referenced
    type exists (after merging), extension chains are acyclic, only
    registered simple types are used. Returns the merged registry. *)

val validate : registry -> Dom.element -> error list
(** Validate a tree against the registry's root declarations. The
    empty list means the document is valid. Layout (comments, PIs,
    whitespace) is ignored. *)

val validate_against : registry -> type_name:string -> Dom.element -> error list
(** Validate a fragment against a specific complex type. *)

val check_simple : simple -> string -> (unit, string) result
(** Validate a lexical value against a simple type. *)

(** {1 XML form}

    A compact dialect mirroring XSD:

    {v
    <schema id="pdl-core" version="1.0">
      <simpleType name="yesno"><enumeration value="yes"/>... </simpleType>
      <complexType name="PropertyType" mixed="false">
        <sequence>
          <element name="name" type="string"/>
          <element name="value" type="string" maxOccurs="unbounded"/>
        </sequence>
        <attribute name="fixed" type="boolean" use="required"/>
      </complexType>
      <complexType name="oclPropertyType" extends="PropertyType">...</complexType>
      <element name="Master" type="MasterType"/>
    </schema>
    v}

    Named [simpleType]s are usable as attribute/element types within
    the same document. Builtin simple type names: [string], [boolean],
    [int], [integer], [positiveInteger], [nonNegativeInteger],
    [decimal], [anyType] (as element type: open wildcard content). *)

val of_xml : Dom.element -> (t, string) result
val of_string : string -> (t, string) result
val to_xml : t -> Dom.element

lib/xml/path.ml: Dom List Option Printf String

lib/xml/schema.mli: Dom Format Loc

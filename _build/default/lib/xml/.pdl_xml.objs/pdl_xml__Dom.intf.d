lib/xml/dom.mli: Format Loc

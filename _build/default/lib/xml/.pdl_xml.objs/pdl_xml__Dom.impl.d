lib/xml/dom.ml: Format List Loc String

lib/xml/schema.ml: Decode Dom Format Hashtbl List Loc Option Printf Result Seq Str String

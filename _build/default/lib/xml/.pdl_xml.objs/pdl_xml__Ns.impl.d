lib/xml/ns.ml: Dom List Map Option Printf String

lib/xml/encode.ml: Buffer Dom Format Fun List String

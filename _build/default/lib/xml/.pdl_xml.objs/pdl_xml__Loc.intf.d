lib/xml/loc.mli: Format

lib/xml/encode.mli: Dom Format

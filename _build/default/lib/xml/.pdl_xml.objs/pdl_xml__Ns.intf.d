lib/xml/ns.mli: Dom

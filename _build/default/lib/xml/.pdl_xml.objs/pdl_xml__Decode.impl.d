lib/xml/decode.ml: Buffer Char Dom Fun List Loc Printf Result String

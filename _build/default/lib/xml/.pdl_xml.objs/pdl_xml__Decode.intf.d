lib/xml/decode.mli: Dom Loc

lib/xml/loc.ml: Format

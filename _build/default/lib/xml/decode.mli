(** XML parser.

    A hand-written recursive-descent parser for the XML subset the
    PDL toolchain needs: elements, attributes, character data, CDATA
    sections, comments, processing instructions, an optional XML
    declaration, a skipped DOCTYPE, and the five predefined entities
    plus decimal/hexadecimal character references. UTF-8 input passes
    through byte-transparently.

    Not supported (by design): internal DTD subsets with entity
    definitions, external entities, and attribute-value entity
    expansion beyond the predefined five. PDL documents never use
    these. *)

type error = { message : string; at : Loc.span }

exception Error of error

val error_to_string : error -> string

val doc_of_string : ?filename:string -> string -> (Dom.doc, error) result
(** Parse a complete document. [filename] is used in error messages
    only. *)

val element_of_string : ?filename:string -> string -> (Dom.element, error) result
(** Parse a single element (fragment parsing; no XML declaration
    required, leading/trailing whitespace allowed). *)

val doc_of_string_exn : ?filename:string -> string -> Dom.doc
(** @raise Error on malformed input. *)

val element_of_string_exn : ?filename:string -> string -> Dom.element

val doc_of_file : string -> (Dom.doc, error) result
(** Reads and parses a file. I/O failures are reported as [Error]
    with a dummy location. *)

val unescape : string -> string
(** Expand predefined entities and character references in a string,
    as attribute values are expanded. Malformed references are left
    verbatim. *)

(** Source locations for XML documents.

    Positions are 1-based line/column pairs; spans pair a start and an
    end position. Every parse error and every element produced by
    {!Pdl_xml.Decode} carries a span so downstream tools (the PDL
    validator, the Cascabel compiler) can report precise locations. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset into the input *)
}

type span = { start_pos : pos; end_pos : pos }

val start : pos
(** Position of the first byte of a document: line 1, column 1. *)

val dummy : span
(** Span used for synthetic nodes that have no source text. *)

val is_dummy : span -> bool

val span : pos -> pos -> span

val advance : pos -> char -> pos
(** [advance p c] is the position after reading character [c] at [p].
    Newlines reset the column and bump the line. *)

val merge : span -> span -> span
(** Smallest span covering both arguments (dummy spans are ignored). *)

val pp_pos : Format.formatter -> pos -> unit
val pp : Format.formatter -> span -> unit

val to_string : span -> string
(** ["line L, column C"] or ["line L1, col C1 - line L2, col C2"]. *)

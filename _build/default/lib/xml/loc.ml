type pos = { line : int; col : int; offset : int }
type span = { start_pos : pos; end_pos : pos }

let start = { line = 1; col = 1; offset = 0 }

let dummy =
  let p = { line = 0; col = 0; offset = -1 } in
  { start_pos = p; end_pos = p }

let is_dummy s = s.start_pos.offset < 0
let span start_pos end_pos = { start_pos; end_pos }

let advance p = function
  | '\n' -> { line = p.line + 1; col = 1; offset = p.offset + 1 }
  | _ -> { p with col = p.col + 1; offset = p.offset + 1 }

let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else
    let start_pos =
      if a.start_pos.offset <= b.start_pos.offset then a.start_pos
      else b.start_pos
    in
    let end_pos =
      if a.end_pos.offset >= b.end_pos.offset then a.end_pos else b.end_pos
    in
    { start_pos; end_pos }

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col

let pp ppf s =
  if is_dummy s then Format.fprintf ppf "<no location>"
  else if s.start_pos.line = s.end_pos.line then
    Format.fprintf ppf "line %d, columns %d-%d" s.start_pos.line s.start_pos.col
      s.end_pos.col
  else
    Format.fprintf ppf "line %d, column %d - line %d, column %d"
      s.start_pos.line s.start_pos.col s.end_pos.line s.end_pos.col

let to_string s = Format.asprintf "%a" pp s

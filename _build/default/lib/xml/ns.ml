type xname = { uri : string; xlocal : string }

let xname ?(uri = "") xlocal = { uri; xlocal }

let xname_to_string n =
  if n.uri = "" then n.xlocal else "{" ^ n.uri ^ "}" ^ n.xlocal

let xml_uri = "http://www.w3.org/XML/1998/namespace"
let xmlns_uri = "http://www.w3.org/2000/xmlns/"
let xsi = "http://www.w3.org/2001/XMLSchema-instance"

module Smap = Map.Make (String)

type scope = string Smap.t

let root_scope = Smap.empty |> Smap.add "xml" xml_uri |> Smap.add "xmlns" xmlns_uri

let of_bindings bindings =
  List.fold_left (fun sc (p, u) -> Smap.add p u sc) root_scope bindings

let declarations (el : Dom.element) =
  List.filter_map
    (fun (a : Dom.attribute) ->
      match (a.attr_name.prefix, a.attr_name.local) with
      | "", "xmlns" -> Some ("", a.attr_value)
      | "xmlns", p -> Some (p, a.attr_value)
      | _ -> None)
    el.attrs

let extend sc el =
  List.fold_left (fun sc (p, u) -> Smap.add p u sc) sc (declarations el)

let lookup sc prefix = Smap.find_opt prefix sc

let resolve_name sc (n : Dom.name) =
  if n.prefix = "" then
    Ok { uri = Option.value ~default:"" (lookup sc ""); xlocal = n.local }
  else
    match lookup sc n.prefix with
    | Some uri -> Ok { uri; xlocal = n.local }
    | None -> Error (Printf.sprintf "undeclared namespace prefix %S" n.prefix)

let resolve_attr_name sc (n : Dom.name) =
  if n.prefix = "" then Ok { uri = ""; xlocal = n.local } else resolve_name sc n

let fold sc el ~init ~f =
  let rec go acc sc el =
    let sc = extend sc el in
    let acc = f acc sc el in
    List.fold_left
      (fun acc -> function Dom.Element e -> go acc sc e | _ -> acc)
      acc el.Dom.children
  in
  go init sc el

let xsi_type sc el =
  let sc = extend sc el in
  let is_xsi_type (a : Dom.attribute) =
    match resolve_attr_name sc a.attr_name with
    | Ok n -> n.uri = xsi && n.xlocal = "type"
    | Error _ -> a.attr_name.prefix = "xsi" && a.attr_name.local = "type"
  in
  match List.find_opt is_xsi_type el.attrs with
  | None -> Ok None
  | Some a -> (
      match resolve_name sc (Dom.name_of_string a.attr_value) with
      | Ok n -> Ok (Some n)
      | Error e -> Error e)

(** XML serialization.

    Produces either a compact single-line form or an indented,
    human-readable form. Round trip property: for any tree [t],
    [Decode.element_of_string_exn (Encode.element_to_string t)] is
    structurally equal to [t] (modulo spans and layout whitespace). *)

type config = {
  indent : int;  (** spaces per nesting level (indented mode) *)
  declaration : bool;  (** emit [<?xml version=...?>] for documents *)
  self_close : bool;  (** emit [<a/>] instead of [<a></a>] *)
}

val default : config
(** 2-space indent, declaration on, self-closing tags on. *)

val compact : config
(** No indentation at all (single line). *)

val escape_text : string -> string
(** Escape ['&'], ['<'], ['>'] for character data. *)

val escape_attr : string -> string
(** Escape ['&'], ['<'], ['"'] and control characters for a
    double-quoted attribute value. *)

val element_to_string : ?config:config -> Dom.element -> string
val doc_to_string : ?config:config -> Dom.doc -> string

val pp_element : ?config:config -> Format.formatter -> Dom.element -> unit
val pp_doc : ?config:config -> Format.formatter -> Dom.doc -> unit

val doc_to_file : ?config:config -> string -> Dom.doc -> unit
(** [doc_to_file path doc] writes the document with a trailing
    newline. *)

type config = { indent : int; declaration : bool; self_close : bool }

let default = { indent = 2; declaration = true; self_close = true }
let compact = { indent = -1; declaration = true; self_close = true }

let escape gen s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter (fun c -> Buffer.add_string buf (gen c)) s;
  Buffer.contents buf

let escape_text =
  escape (function
    | '&' -> "&amp;"
    | '<' -> "&lt;"
    | '>' -> "&gt;"
    | c -> String.make 1 c)

let escape_attr =
  escape (function
    | '&' -> "&amp;"
    | '<' -> "&lt;"
    | '"' -> "&quot;"
    | '\n' -> "&#10;"
    | '\t' -> "&#9;"
    | '\r' -> "&#13;"
    | c -> String.make 1 c)

let add_attrs buf attrs =
  List.iter
    (fun (a : Dom.attribute) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Dom.name_to_string a.attr_name);
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr a.attr_value);
      Buffer.add_char buf '"')
    attrs

let is_blank s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* An element renders inline when it has no element children, or when
   it has mixed content: indentation would inject whitespace into the
   character data and break the round trip. *)
let inline_only (el : Dom.element) =
  List.for_all (function Dom.Element _ -> false | _ -> true) el.children
  || List.exists
       (function
         | Dom.Text (s, _) | Dom.Cdata (s, _) -> not (is_blank s)
         | _ -> false)
       el.children

let render config buf root =
  let pretty = config.indent >= 0 in
  let pad level =
    if pretty then Buffer.add_string buf (String.make (level * config.indent) ' ')
  in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec node level = function
    | Dom.Text (s, _) -> Buffer.add_string buf (escape_text s)
    | Dom.Cdata (s, _) ->
        Buffer.add_string buf "<![CDATA[";
        Buffer.add_string buf s;
        Buffer.add_string buf "]]>"
    | Dom.Comment (s, _) ->
        Buffer.add_string buf "<!--";
        Buffer.add_string buf s;
        Buffer.add_string buf "-->"
    | Dom.Pi (target, content, _) ->
        Buffer.add_string buf "<?";
        Buffer.add_string buf target;
        if content <> "" then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf content
        end;
        Buffer.add_string buf "?>"
    | Dom.Element el -> element level el
  and element level el =
    let name = Dom.name_to_string el.Dom.name in
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    add_attrs buf el.attrs;
    let children =
      if pretty then
        List.filter
          (function Dom.Text (s, _) when is_blank s -> false | _ -> true)
          el.children
      else el.children
    in
    match children with
    | [] ->
        if config.self_close then Buffer.add_string buf "/>"
        else begin
          Buffer.add_string buf "></";
          Buffer.add_string buf name;
          Buffer.add_char buf '>'
        end
    | _ when inline_only { el with children } ->
        Buffer.add_char buf '>';
        List.iter (node level) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
    | _ ->
        Buffer.add_char buf '>';
        List.iter
          (fun n ->
            newline ();
            pad (level + 1);
            node (level + 1) n)
          children;
        newline ();
        pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
  in
  element 0 root

let element_to_string ?(config = default) el =
  let buf = Buffer.create 256 in
  render config buf el;
  Buffer.contents buf

let doc_to_string ?(config = default) (doc : Dom.doc) =
  let buf = Buffer.create 256 in
  if config.declaration then begin
    Buffer.add_string buf "<?xml version=\"";
    Buffer.add_string buf doc.version;
    Buffer.add_char buf '"';
    (match doc.encoding with
    | Some enc ->
        Buffer.add_string buf " encoding=\"";
        Buffer.add_string buf enc;
        Buffer.add_char buf '"'
    | None -> ());
    (match doc.standalone with
    | Some sa ->
        Buffer.add_string buf " standalone=\"";
        Buffer.add_string buf (if sa then "yes" else "no");
        Buffer.add_char buf '"'
    | None -> ());
    Buffer.add_string buf "?>";
    if config.indent >= 0 then Buffer.add_char buf '\n'
  end;
  render config buf doc.root;
  Buffer.contents buf

let pp_element ?config ppf el =
  Format.pp_print_string ppf (element_to_string ?config el)

let pp_doc ?config ppf doc = Format.pp_print_string ppf (doc_to_string ?config doc)

let doc_to_file ?config path doc =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (doc_to_string ?config doc);
      output_char oc '\n')

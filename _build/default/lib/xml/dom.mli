(** XML document object model.

    A deliberately small DOM: elements, text, CDATA, comments and
    processing instructions, with prefixed names kept verbatim
    (namespace expansion is a separate pass, see {!Pdl_xml.Ns}).
    Every node carries a {!Loc.span} for error reporting; spans are
    ignored by the structural equality functions. *)

type name = { prefix : string; local : string }
(** A possibly prefixed XML name. [prefix] is [""] when absent. *)

type attribute = { attr_name : name; attr_value : string; attr_span : Loc.span }

type node =
  | Element of element
  | Text of string * Loc.span
  | Cdata of string * Loc.span
  | Comment of string * Loc.span
  | Pi of string * string * Loc.span  (** target, content *)

and element = {
  name : name;
  attrs : attribute list;
  children : node list;
  span : Loc.span;
}

type doc = {
  version : string;  (** ["1.0"] when no XML declaration is present *)
  encoding : string option;
  standalone : bool option;
  root : element;
}

(** {1 Names} *)

val name : ?prefix:string -> string -> name
val name_to_string : name -> string
(** ["prefix:local"] or just ["local"]. *)

val name_of_string : string -> name
(** Splits on the first [':']. *)

val equal_name : name -> name -> bool

(** {1 Constructors}

    Builders for synthetic trees (no source locations). *)

val elem :
  ?prefix:string -> ?attrs:(string * string) list -> string -> node list ->
  element
(** [elem ?prefix ?attrs local children]. Attribute keys may be
    prefixed ("xsi:type"). *)

val e : ?prefix:string -> ?attrs:(string * string) list -> string ->
  node list -> node
(** Like {!elem} but wrapped as a {!node}. *)

val text : string -> node
val comment : string -> node
val doc : element -> doc

(** {1 Accessors} *)

val attr : element -> string -> string option
(** [attr el k] looks up attribute [k] (matched against the printed
    name, so pass ["xsi:type"] for prefixed attributes). *)

val attr_exn : element -> string -> string
(** @raise Not_found when the attribute is absent. *)

val child_elements : element -> element list
val find_child : element -> string -> element option
(** First child element whose local name is the argument. *)

val find_children : element -> string -> element list
(** All child elements with the given local name, in document order. *)

val text_content : element -> string
(** Concatenation of all descendant text and CDATA, in order. *)

val own_text : element -> string
(** Concatenation of the element's direct text/CDATA children only. *)

(** {1 Transformations} *)

val strip_layout : element -> element
(** Recursively removes comments, processing instructions and
    whitespace-only text nodes. Text nodes with content are kept
    verbatim. *)

val map_elements : (element -> element) -> element -> element
(** Bottom-up rewriting over all elements of a tree. *)

val fold_elements : ('a -> element -> 'a) -> 'a -> element -> 'a
(** Pre-order fold over all elements of a tree, root included. *)

(** {1 Comparison} *)

val equal_element : element -> element -> bool
(** Structural equality ignoring spans, comments, PIs and
    whitespace-only text. *)

val equal_node : node -> node -> bool

val pp_name : Format.formatter -> name -> unit
val pp_element : Format.formatter -> element -> unit
(** Debug printer (single line); use {!Encode} for real output. *)

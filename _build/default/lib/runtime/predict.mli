(** Analytic performance prediction from PDL descriptors.

    One of the paper's Figure 1 usage scenarios: tools use platform
    descriptions for "selection of implementation variants,
    performance prediction, task mapping". This module derives
    closed-form bounds from the same PDL properties that drive the
    simulator — no simulation run needed — and the test suite checks
    the simulator never beats them (work conservation).

    For a workload of [flops] total work whose inputs of [bytes] must
    reach device memory:

    - {e work bound}: [flops / sum of worker GFLOP/s] — perfect
      load balance over every worker;
    - {e transfer bound}: the slowest single link's share of the
      bytes, at full bandwidth;
    - {e serial time}: all work on the fastest single worker. *)

type bounds = {
  work_bound_s : float;
  transfer_bound_s : float;
  lower_bound_s : float;  (** max of the two *)
  serial_s : float;
  max_speedup : float;  (** serial / lower bound *)
}

val bounds :
  ?group:string -> Machine_config.t -> flops:float -> device_bytes:float ->
  bounds
(** [device_bytes] is the data volume that must cross each non-host
    link (0 for CPU-only machines). [group] restricts the worker set
    like an execution group does. *)

val dgemm_bounds : ?group:string -> Machine_config.t -> n:int -> bounds
(** Bounds for the square [n x n] DGEMM: [2n^3] FLOPs; device bytes
    approximate the A/B/C traffic of a row/column-strip decomposition
    (3 matrix volumes across the device links combined). *)

val aggregate_gflops : ?group:string -> Machine_config.t -> float
val fastest_worker_gflops : ?group:string -> Machine_config.t -> float

val report : bounds -> string

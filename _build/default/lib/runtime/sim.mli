(** Discrete-event simulation core.

    The runtime executes task graphs against a {e simulated} machine:
    virtual time advances through an event queue, and contended
    facilities (worker pipelines, interconnect links) are modeled as
    {!resource}s that serialize use. This is the substitution for the
    paper's physical testbed (see DESIGN.md §3): scheduling decisions,
    data transfers and compute times all happen in virtual time, while
    kernel {e results} can still be computed for real by the engine.

    Events scheduled at equal times fire in insertion order. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedule a callback [delay] seconds from now (>= 0). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument when [time] is in the past. *)

val run : t -> unit
(** Drain the event queue, advancing virtual time. *)

val events_processed : t -> int

(** {1 Serially reusable resources} *)

type resource

val resource : string -> resource
(** A fresh resource, free from time 0. *)

val resource_name : resource -> string
val busy_until : resource -> float

val acquire : resource -> at:float -> duration:float -> float * float
(** [acquire r ~at ~duration] books the earliest slot of [duration]
    seconds starting no earlier than [at]; returns [(start, finish)]
    and marks the resource busy until [finish]. *)

val peek : resource -> at:float -> duration:float -> float * float
(** Like {!acquire} without booking — used for cost estimates. *)

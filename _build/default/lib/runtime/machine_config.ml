open Pdl_model.Machine

type worker = {
  w_id : int;
  w_name : string;
  w_pu : string;
  w_arch : string;
  w_gflops : float;
  w_node : int;
  w_groups : string list;
}

type link = {
  l_node : int;
  l_name : string;
  l_bandwidth_mbps : float;
  l_latency_us : float;
}

type t = {
  platform : Pdl_model.Machine.platform;
  workers : worker array;
  links : link list;
  node_count : int;
}

type defaults = {
  d_cpu_gflops : float;
  d_gpu_gflops : float;
  d_accel_gflops : float;
  d_bandwidth_mbps : float;
  d_latency_us : float;
}

let defaults =
  {
    d_cpu_gflops = 5.0;
    d_gpu_gflops = 50.0;
    d_accel_gflops = 2.0;
    d_bandwidth_mbps = 4000.0;
    d_latency_us = 15.0;
  }

let cpu_archs =
  [ "x86"; "x86_64"; "amd64"; "i386"; "ppc"; "ppc64"; "arm"; "arm64"; "cpu" ]

let arch_class_of_pu pu =
  match pu_property pu "ARCHITECTURE" with
  | None -> "cpu"
  | Some a ->
      let a = String.lowercase_ascii a in
      if List.mem a cpu_archs then "cpu"
      else if a = "gpu" || a = "gpgpu" || a = "cuda" || a = "opencl" then "gpu"
      else a

let float_prop d name =
  Option.bind (property_value d name) float_of_string_opt

let gflops_of_pu dft pu =
  match float_prop pu.pu_descriptor "DGEMM_THROUGHPUT" with
  | Some g -> g
  | None -> (
      match arch_class_of_pu pu with
      | "cpu" -> dft.d_cpu_gflops
      | "gpu" -> dft.d_gpu_gflops
      | _ -> dft.d_accel_gflops)

(* The link used to feed a PU: the interconnect whose endpoint set
   contains the PU id, searching the whole platform. *)
let link_props_of_pu dft pf pu =
  let ics = connections_of pf pu.pu_id in
  let bw, lat =
    match ics with
    | ic :: _ ->
        ( Option.value
            ~default:dft.d_bandwidth_mbps
            (float_prop ic.ic_descriptor "BANDWIDTH_MBPS"),
          Option.value ~default:dft.d_latency_us
            (float_prop ic.ic_descriptor "LATENCY_US") )
    | [] -> (dft.d_bandwidth_mbps, dft.d_latency_us)
  in
  (bw, lat)

let of_platform ?(defaults = defaults) pf =
  let dft = defaults in
  let workers = ref [] in
  let links = ref [] in
  let next_worker = ref 0 in
  let next_node = ref 1 in
  let add_worker ~name ~pu ~arch ~gflops ~node =
    let w =
      {
        w_id = !next_worker;
        w_name = name;
        w_pu = pu.pu_id;
        w_arch = arch;
        w_gflops = gflops;
        w_node = node;
        w_groups = pu.pu_groups;
      }
    in
    incr next_worker;
    workers := w :: !workers
  in
  let expand pu =
    let arch = arch_class_of_pu pu in
    let gflops = gflops_of_pu dft pu in
    let shares_host_memory = arch = "cpu" in
    for unit = 0 to pu.pu_quantity - 1 do
      let name =
        if pu.pu_quantity = 1 then pu.pu_id
        else Printf.sprintf "%s#%d" pu.pu_id unit
      in
      let node =
        if shares_host_memory then Data.main_memory
        else begin
          let bw, lat = link_props_of_pu dft pf pu in
          let node = !next_node in
          incr next_node;
          links :=
            {
              l_node = node;
              l_name = Printf.sprintf "link:%s" name;
              l_bandwidth_mbps = bw;
              l_latency_us = lat;
            }
            :: !links;
          node
        end
      in
      add_worker ~name ~pu ~arch ~gflops ~node
    done
  in
  iter
    (fun pu ->
      match pu.pu_class with
      | Worker -> expand pu
      | Hybrid ->
          (* A Hybrid computes only when the descriptor says so;
             otherwise it is pure control. *)
          if float_prop pu.pu_descriptor "DGEMM_THROUGHPUT" <> None then
            expand pu
      | Master -> ())
    pf;
  match List.rev !workers with
  | [] ->
      Error
        (Printf.sprintf "platform %S provides no compute workers" pf.pf_name)
  | ws ->
      Ok
        {
          platform = pf;
          workers = Array.of_list ws;
          links = List.rev !links;
          node_count = !next_node;
        }

let of_platform_exn ?defaults pf =
  match of_platform ?defaults pf with
  | Ok t -> t
  | Error msg -> invalid_arg ("Machine_config.of_platform_exn: " ^ msg)

let workers_in_group t g =
  Array.to_list t.workers
  |> List.filter (fun w -> List.mem g w.w_groups)

let link_for_node t node = List.find_opt (fun l -> l.l_node = node) t.links

let describe t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "machine %S: %d workers, %d memory nodes\n"
       t.platform.pf_name (Array.length t.workers) t.node_count);
  Array.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  worker %d: %s (%s, %.1f GFLOP/s, node %d%s)\n"
           w.w_id w.w_name w.w_arch w.w_gflops w.w_node
           (if w.w_groups = [] then ""
            else ", groups " ^ String.concat "," w.w_groups)))
    t.workers;
  Buffer.contents buf

lib/runtime/trace_export.ml: Buffer Char Engine Fun Hashtbl List Printf String

lib/runtime/engine.mli: Codelet Data Machine_config

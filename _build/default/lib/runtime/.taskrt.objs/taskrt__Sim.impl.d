lib/runtime/sim.ml: Array Float Printf

lib/runtime/machine_config.mli: Pdl_model

lib/runtime/tiled_dgemm.mli: Engine Kernels Machine_config

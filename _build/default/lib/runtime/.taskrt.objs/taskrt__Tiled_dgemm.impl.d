lib/runtime/tiled_dgemm.ml: Array Codelet Data Engine Kernels List Machine_config Option

lib/runtime/data.mli: Kernels

lib/runtime/tiled_cholesky.mli: Engine Kernels Machine_config

lib/runtime/trace_export.mli: Engine

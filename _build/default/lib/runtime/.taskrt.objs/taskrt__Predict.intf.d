lib/runtime/predict.mli: Machine_config

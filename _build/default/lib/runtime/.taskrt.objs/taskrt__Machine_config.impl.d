lib/runtime/machine_config.ml: Array Buffer Data List Option Pdl_model Printf String

lib/runtime/tiled_cholesky.ml: Array Codelet Data Engine Kernels List Machine_config Option

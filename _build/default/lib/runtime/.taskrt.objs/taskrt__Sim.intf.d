lib/runtime/sim.mli:

lib/runtime/codelet.mli: Data

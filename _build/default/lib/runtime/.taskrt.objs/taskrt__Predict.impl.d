lib/runtime/predict.ml: Array Data Float List Machine_config Printf

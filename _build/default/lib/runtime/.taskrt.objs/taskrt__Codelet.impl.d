lib/runtime/codelet.ml: Data Kernels List Printf

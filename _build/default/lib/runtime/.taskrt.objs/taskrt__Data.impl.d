lib/runtime/data.ml: Array Kernels List Option Printf

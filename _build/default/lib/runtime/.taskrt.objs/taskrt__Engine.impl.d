lib/runtime/engine.ml: Array Codelet Data Float Hashtbl List Machine_config Option Printf Queue Sim

(** Instantiating the runtime's machine from a PDL description.

    This is the paper's point made executable: the runtime is not
    compiled against a machine — it is {e parameterized by the PDL
    descriptor}. Worker counts come from PU quantities, per-worker
    throughput from [DGEMM_THROUGHPUT] properties, memory topology
    from memory regions, and transfer costs from interconnect
    [BANDWIDTH_MBPS]/[LATENCY_US] properties. Changing the target
    system means loading a different descriptor (cf. Figure 5, where
    the same input program runs on two PDLs).

    Worker expansion rules:
    - every Worker PU yields [quantity] runtime workers;
    - Hybrid PUs contribute a worker too when they advertise
      [DGEMM_THROUGHPUT] (they can compute, not just control);
    - Master PUs never become workers — they are control.

    Memory-node rules: CPU-class workers share the host's main
    memory (node 0); every non-CPU worker unit gets a private memory
    node reached over the PU's interconnect link. *)

type worker = {
  w_id : int;
  w_name : string;  (** e.g. ["gpu0"], ["cpu-cores#3"] *)
  w_pu : string;  (** the PDL PU id this worker came from *)
  w_arch : string;  (** architecture class: ["cpu"], ["gpu"], ... *)
  w_gflops : float;  (** sustained throughput for the cost model *)
  w_node : int;  (** memory node holding its inputs *)
  w_groups : string list;  (** logic groups inherited from the PU *)
}

type link = {
  l_node : int;  (** device-side memory node *)
  l_name : string;
  l_bandwidth_mbps : float;
  l_latency_us : float;
}

type t = {
  platform : Pdl_model.Machine.platform;
  workers : worker array;
  links : link list;  (** one per non-host memory node *)
  node_count : int;
}

type defaults = {
  d_cpu_gflops : float;
  d_gpu_gflops : float;
  d_accel_gflops : float;
  d_bandwidth_mbps : float;
  d_latency_us : float;
}

val defaults : defaults
(** 5 GFLOP/s CPU, 50 GFLOP/s GPU, 2 GFLOP/s accelerator, 4000 MB/s,
    15 us — used when the PDL omits performance properties. *)

val arch_class_of_pu : Pdl_model.Machine.pu -> string
(** ["cpu"] for x86/ppc/arm-ish [ARCHITECTURE] values, ["gpu"] for
    GPUs, otherwise the architecture string itself. *)

val of_platform :
  ?defaults:defaults -> Pdl_model.Machine.platform -> (t, string) result
(** Fails when the platform has no usable worker. *)

val of_platform_exn : ?defaults:defaults -> Pdl_model.Machine.platform -> t

val workers_in_group : t -> string -> worker list
(** Workers whose source PU belongs to the logic group — the runtime
    side of the paper's execution-group mapping. *)

val link_for_node : t -> int -> link option
(** [None] for node 0 (main memory — no transfer needed). *)

val describe : t -> string
(** One-line-per-worker human summary. *)

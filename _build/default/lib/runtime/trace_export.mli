(** Execution-trace export.

    StarPU emits Paje traces for post-mortem analysis; taskrt's
    equivalent exports {!Engine.trace} events as Chrome trace-event
    JSON (loadable in [chrome://tracing] / Perfetto), as CSV, or as a
    per-codelet text summary. Virtual times are exported in
    microseconds. *)

val to_chrome_json : Engine.trace_event list -> string
(** Complete-event ("ph":"X") records, one lane per worker; transfer
    phases are emitted as separate events when a task moved bytes. *)

val to_csv : Engine.trace_event list -> string
(** Header: [task,codelet,worker,start_us,compute_start_us,end_us,bytes_in]. *)

val summary : Engine.trace_event list -> string
(** Per-codelet aggregate: count, total/mean compute seconds, total
    transfer seconds, bytes moved. *)

val write_chrome : string -> Engine.trace_event list -> unit
(** Write the JSON to a file. *)

(* Binary-heap event queue keyed by (time, sequence number); the
   sequence number makes same-time events fire in insertion order. *)

type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let dummy_event = { time = 0.0; seq = 0; action = ignore }

let create () =
  {
    heap = Array.make 64 dummy_event;
    size = 0;
    clock = 0.0;
    next_seq = 0;
    processed = 0;
  }

let now t = t.clock

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy_event in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    earlier t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_event;
  (* sift down *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  top

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now (%g)" time
         t.clock);
  let ev = { time; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let run t =
  while t.size > 0 do
    let ev = pop t in
    t.clock <- ev.time;
    t.processed <- t.processed + 1;
    ev.action ()
  done

let events_processed t = t.processed

type resource = { rname : string; mutable free_at : float }

let resource rname = { rname; free_at = 0.0 }
let resource_name r = r.rname
let busy_until r = r.free_at

let peek r ~at ~duration =
  let start = Float.max at r.free_at in
  (start, start +. duration)

let acquire r ~at ~duration =
  let start, finish = peek r ~at ~duration in
  r.free_at <- finish;
  (start, finish)

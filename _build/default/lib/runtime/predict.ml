type bounds = {
  work_bound_s : float;
  transfer_bound_s : float;
  lower_bound_s : float;
  serial_s : float;
  max_speedup : float;
}

let selected_workers ?group (cfg : Machine_config.t) =
  match group with
  | None -> Array.to_list cfg.workers
  | Some g -> Machine_config.workers_in_group cfg g

let aggregate_gflops ?group cfg =
  List.fold_left
    (fun acc (w : Machine_config.worker) -> acc +. w.w_gflops)
    0.0
    (selected_workers ?group cfg)

let fastest_worker_gflops ?group cfg =
  List.fold_left
    (fun acc (w : Machine_config.worker) -> Float.max acc w.w_gflops)
    0.0
    (selected_workers ?group cfg)

let bounds ?group (cfg : Machine_config.t) ~flops ~device_bytes =
  let workers = selected_workers ?group cfg in
  let total = aggregate_gflops ?group cfg in
  let fastest = fastest_worker_gflops ?group cfg in
  let work_bound_s = if total > 0.0 then flops /. (total *. 1e9) else infinity in
  (* Each device-side link must carry its workers' share of the
     traffic; with uniform split the binding link is the slowest one
     that is actually used. *)
  let used_links =
    List.filter_map
      (fun (w : Machine_config.worker) -> Machine_config.link_for_node cfg w.w_node)
      workers
    |> List.sort_uniq compare
  in
  let transfer_bound_s =
    match used_links with
    | [] -> 0.0
    | links ->
        let share = device_bytes /. float_of_int (List.length links) in
        List.fold_left
          (fun worst (l : Machine_config.link) ->
            Float.max worst
              ((l.l_latency_us *. 1e-6)
              +. (share /. (l.l_bandwidth_mbps *. 1e6))))
          0.0 links
  in
  let lower_bound_s = Float.max work_bound_s transfer_bound_s in
  let serial_s = if fastest > 0.0 then flops /. (fastest *. 1e9) else infinity in
  {
    work_bound_s;
    transfer_bound_s;
    lower_bound_s;
    serial_s;
    max_speedup = (if lower_bound_s > 0.0 then serial_s /. lower_bound_s else 1.0);
  }

let dgemm_bounds ?group cfg ~n =
  let nf = float_of_int n in
  let flops = 2.0 *. nf *. nf *. nf in
  (* A strips + B strips + C tiles: about three matrix volumes cross
     the device links in a strip decomposition. *)
  let device_bytes =
    let has_device =
      List.exists
        (fun (w : Machine_config.worker) -> w.w_node <> Data.main_memory)
        (selected_workers ?group cfg)
    in
    if has_device then 3.0 *. 8.0 *. nf *. nf else 0.0
  in
  bounds ?group cfg ~flops ~device_bytes

let report b =
  Printf.sprintf
    "work bound %.6f s, transfer bound %.6f s => lower bound %.6f s; \
     serial %.6f s; max speedup %.2fx"
    b.work_bound_s b.transfer_bound_s b.lower_bound_s b.serial_s b.max_speedup

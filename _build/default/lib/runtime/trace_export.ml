let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Stable worker -> lane mapping in first-appearance order. *)
let lanes events =
  let table = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun (e : Engine.trace_event) ->
      if not (Hashtbl.mem table e.tr_worker) then begin
        Hashtbl.replace table e.tr_worker !next;
        incr next
      end)
    events;
  table

let us t = t *. 1e6

let to_chrome_json events =
  let table = lanes events in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf s)
      fmt
  in
  (* lane names *)
  Hashtbl.iter
    (fun worker tid ->
      emit
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
         \"args\":{\"name\":\"%s\"}}"
        tid (json_escape worker))
    table;
  List.iter
    (fun (e : Engine.trace_event) ->
      let tid = Hashtbl.find table e.tr_worker in
      if e.tr_compute_start > e.tr_start then
        emit
          "{\"name\":\"%s\",\"cat\":\"transfer\",\"ph\":\"X\",\"ts\":%.3f,\
           \"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"bytes\":%.0f}}"
          (json_escape (e.tr_task ^ ":in"))
          (us e.tr_start)
          (us (e.tr_compute_start -. e.tr_start))
          tid e.tr_bytes_in;
      emit
        "{\"name\":\"%s\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":%.3f,\
         \"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"codelet\":\"%s\"}}"
        (json_escape e.tr_task)
        (us e.tr_compute_start)
        (us (e.tr_end -. e.tr_compute_start))
        tid
        (json_escape e.tr_codelet))
    events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_csv events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "task,codelet,worker,start_us,compute_start_us,end_us,bytes_in\n";
  List.iter
    (fun (e : Engine.trace_event) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%.3f,%.3f,%.3f,%.0f\n" e.tr_task
           e.tr_codelet e.tr_worker (us e.tr_start) (us e.tr_compute_start)
           (us e.tr_end) e.tr_bytes_in))
    events;
  Buffer.contents buf

let summary events =
  let table : (string, int ref * float ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (e : Engine.trace_event) ->
      let count, compute, transfer, bytes =
        match Hashtbl.find_opt table e.tr_codelet with
        | Some entry -> entry
        | None ->
            let entry = (ref 0, ref 0.0, ref 0.0, ref 0.0) in
            Hashtbl.replace table e.tr_codelet entry;
            entry
      in
      incr count;
      compute := !compute +. (e.tr_end -. e.tr_compute_start);
      transfer := !transfer +. (e.tr_compute_start -. e.tr_start);
      bytes := !bytes +. e.tr_bytes_in)
    events;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %8s %14s %14s %14s %12s\n" "codelet" "tasks"
       "compute [s]" "mean [ms]" "transfer [s]" "bytes [MB]");
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort compare
  |> List.iter (fun (codelet, (count, compute, transfer, bytes)) ->
         Buffer.add_string buf
           (Printf.sprintf "%-12s %8d %14.6f %14.3f %14.6f %12.2f\n" codelet
              !count !compute
              (1e3 *. !compute /. float_of_int !count)
              !transfer (!bytes /. 1e6)));
  Buffer.contents buf

let write_chrome path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json events))

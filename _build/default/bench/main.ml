(* Benchmark harness: regenerates every experimental result of the
   paper plus the ablations DESIGN.md calls out.

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe fig5       # one experiment
     dune exec bench/main.exe micro      # Bechamel microbenchmarks

   Experiment ids (see DESIGN.md §4 and EXPERIMENTS.md):
     fig5    Figure 5  — DGEMM speedups single / starpu / starpu+2gpus
     sweep   ABL-SIZE  — matrix-size sweep, GPU offload crossover
     sched   ABL-SCHED — scheduler ablation on the heterogeneous target
     tile    ABL-TILE  — tile-count sensitivity
     presel  ABL-PRESEL— static pre-selection pruning across the zoo
     chol    ABL-CHOL  — tiled Cholesky (dependency-rich DAG)
     micro   Bechamel microbenchmarks of the toolchain itself *)

module MC = Taskrt.Machine_config
module TD = Taskrt.Tiled_dgemm
module Engine = Taskrt.Engine

let line = String.make 72 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line
let cfg_of name = MC.of_platform_exn (Option.get (Pdl_hwprobe.Zoo.find name))

(* ------------------------------------------------------------------ *)
(* FIG5: the paper's Figure 5                                          *)

let fig5 () =
  header
    "FIG5  DGEMM 8192x8192 speedup over the single-threaded input (paper \
     Figure 5)";
  let n = 8192 in
  let single =
    TD.run_model ~policy:Engine.Eager ~tiles:1 (cfg_of "xeon-single") ~n
  in
  let rows =
    [
      ("single", single);
      ( "starpu",
        TD.run_model ~policy:Engine.Eager ~tiles:8 (cfg_of "xeon-x5550-smp")
          ~n );
      ( "starpu+2gpus",
        TD.run_model ~policy:Engine.Heft ~tiles:8 (cfg_of "xeon-2gpu") ~n );
    ]
  in
  Printf.printf "%-14s %12s %10s %12s %8s\n" "version" "time [s]" "speedup"
    "GFLOP/s" "tasks";
  List.iter
    (fun (name, (r : TD.result)) ->
      Printf.printf "%-14s %12.2f %9.2fx %12.1f %8d\n" name
        r.stats.Engine.makespan
        (TD.speedup ~baseline:single r)
        r.gflops_effective r.stats.Engine.tasks)
    rows;
  print_newline ();
  print_endline
    "paper (Figure 5): single = 1x, starpu ~= 6-7x, starpu+2gpus ~= 20-25x";
  print_endline
    "shape check: starpu in [6,8], starpu+2gpus in [15,30], ordering holds."

(* ------------------------------------------------------------------ *)
(* ABL-SIZE: size sweep — where does GPU offload start to pay?        *)

let sweep () =
  header
    "ABL-SIZE  DGEMM size sweep: smp vs +2gpus (HEFT), transfer-bound \
     crossover";
  Printf.printf "%-8s %13s %13s %13s %8s %12s\n" "n" "smp [s]" "+2gpus [s]"
    "gpus-only [s]" "ratio" "moved [MB]";
  List.iter
    (fun n ->
      let tiles = min 8 n in
      let smp =
        TD.run_model ~policy:Engine.Eager ~tiles (cfg_of "xeon-x5550-smp") ~n
      in
      let gpu =
        TD.run_model ~policy:Engine.Heft ~tiles (cfg_of "xeon-2gpu") ~n
      in
      (* Forced offload (the execution group contains only the GPUs)
         exposes the raw transfer-bound crossover that HEFT otherwise
         dodges by keeping small problems on the CPUs. *)
      let gpu_only =
        TD.run_model ~policy:Engine.Heft ~tiles ~group:"gpus"
          (cfg_of "xeon-2gpu") ~n
      in
      Printf.printf "%-8d %13.6f %13.6f %13.6f %7.2fx %12.1f\n" n
        smp.stats.Engine.makespan gpu.stats.Engine.makespan
        gpu_only.stats.Engine.makespan
        (smp.stats.Engine.makespan /. gpu.stats.Engine.makespan)
        (gpu.stats.Engine.bytes_transferred /. 1e6))
    [ 256; 512; 1024; 2048; 4096; 8192 ];
  print_newline ();
  print_endline
    "expected shape: gpus-only loses to smp at small n (PCIe dominates) \
     and wins at large n — the offload crossover; the combined machine \
     under HEFT never loses because it declines to offload small \
     problems, and its advantage grows with n."

(* ------------------------------------------------------------------ *)
(* ABL-SCHED: scheduler ablation                                        *)

let sched () =
  header "ABL-SCHED  scheduling policies on the heterogeneous target (8192)";
  let n = 8192 in
  Printf.printf "%-10s %12s %12s %14s %12s\n" "policy" "time [s]" "util [%]"
    "bytes [MB]" "gpu tasks";
  List.iter
    (fun policy ->
      let r = TD.run_model ~policy ~tiles:8 (cfg_of "xeon-2gpu") ~n in
      let gpu_tasks =
        Array.fold_left
          (fun acc ws ->
            if ws.Engine.ws_worker.MC.w_arch = "gpu" then
              acc + ws.Engine.tasks_run
            else acc)
          0 r.stats.Engine.worker_stats
      in
      Printf.printf "%-10s %12.2f %12.1f %14.1f %12d\n"
        (Engine.policy_to_string policy)
        r.stats.Engine.makespan
        (100.0 *. Engine.utilization r.stats)
        (r.stats.Engine.bytes_transferred /. 1e6)
        gpu_tasks)
    [ Engine.Eager; Engine.Heft; Engine.Locality_ws; Engine.Random_place ];
  print_newline ();
  print_endline
    "expected shape: heft fastest (routes work to fast GPUs); random \
     slowest.";
  print_endline "\ncontrol on the homogeneous smp target:";
  List.iter
    (fun policy ->
      let r = TD.run_model ~policy ~tiles:8 (cfg_of "xeon-x5550-smp") ~n in
      Printf.printf "  %-10s %12.2f s\n"
        (Engine.policy_to_string policy)
        r.stats.Engine.makespan)
    [ Engine.Eager; Engine.Heft; Engine.Locality_ws; Engine.Random_place ]

(* ------------------------------------------------------------------ *)
(* ABL-TILE: tile-count sensitivity                                     *)

let tile () =
  header "ABL-TILE  tile-count sensitivity (8192, xeon-2gpu, HEFT)";
  Printf.printf "%-8s %8s %12s %12s %14s\n" "tiles" "tasks" "time [s]"
    "util [%]" "bytes [MB]";
  List.iter
    (fun tiles ->
      let r =
        TD.run_model ~policy:Engine.Heft ~tiles (cfg_of "xeon-2gpu") ~n:8192
      in
      Printf.printf "%-8d %8d %12.2f %12.1f %14.1f\n" tiles
        r.stats.Engine.tasks r.stats.Engine.makespan
        (100.0 *. Engine.utilization r.stats)
        (r.stats.Engine.bytes_transferred /. 1e6))
    [ 1; 2; 4; 8; 16; 32 ];
  print_newline ();
  print_endline
    "expected shape: tiles=1 serializes on one device; very fine tiles \
     pay transfer volume/overhead; the sweet spot sits in between."

(* ------------------------------------------------------------------ *)
(* ABL-PRESEL: pre-selection pruning across the zoo                     *)

let presel_variants =
  {|#pragma cascabel task : x86 : Idgemm : dgemm_seq : (A: read, B: read, C: readwrite)
void dgemm_seq(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : smp : Idgemm : dgemm_smp : (A: read, B: read, C: readwrite)
void dgemm_smp(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : Cuda : Idgemm : dgemm_cublas : (A: read, B: read, C: readwrite)
void dgemm_cublas(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : OpenCL : Idgemm : dgemm_clblas : (A: read, B: read, C: readwrite)
void dgemm_clblas(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : CellSDK : Idgemm : dgemm_cell : (A: read, B: read, C: readwrite)
void dgemm_cell(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : Master[Worker{ARCHITECTURE=gpu},Worker{ARCHITECTURE=gpu}] : Idgemm : dgemm_2gpu : (A: read, B: read, C: readwrite)
void dgemm_2gpu(double *A, double *B, double *C, int m, int n) { }
|}

let presel () =
  header
    "ABL-PRESEL  static pre-selection across the platform zoo (6 DGEMM \
     variants)";
  let unit_ =
    match Minic.Parser.parse presel_variants with
    | Ok u -> u
    | Error e -> failwith (Minic.Parser.error_to_string e)
  in
  Printf.printf "%-18s %6s %8s   %s\n" "platform" "kept" "pruned" "chosen";
  List.iter
    (fun (name, platform) ->
      let repo = Cascabel.Repository.create () in
      (match Cascabel.Repository.register_unit repo unit_ with
      | Ok _ -> ()
      | Error e -> failwith e);
      match Cascabel.Preselect.select repo platform with
      | Ok selections ->
          let stats = Cascabel.Preselect.stats selections in
          let chosen =
            List.filter_map
              (fun (s : Cascabel.Preselect.selection) ->
                Option.map (fun v -> v.Cascabel.Repository.v_name) s.chosen)
              selections
          in
          Printf.printf "%-18s %6d %8d   %s\n" name stats.kept_count
            stats.pruned_count
            (String.concat "," chosen)
      | Error e -> Printf.printf "%-18s error: %s\n" name e)
    Pdl_hwprobe.Zoo.all;
  print_newline ();
  print_endline
    "expected shape: cpu-only platforms keep only fallback(+smp); gpu \
     platforms add gpu variants (dual-gpu pattern only with two gpus); \
     the Cell blade keeps the CellSDK variant."

(* ------------------------------------------------------------------ *)
(* ABL-CHOL: dependency-rich DAG vs embarrassingly parallel            *)

let chol () =
  header
    "ABL-CHOL  tiled Cholesky 8192 (dependency DAG) across targets and \
     policies";
  Printf.printf "%-18s %-8s %10s %12s %12s\n" "platform" "policy" "tasks"
    "time [s]" "GFLOP/s";
  List.iter
    (fun (pf, policy) ->
      let r =
        Taskrt.Tiled_cholesky.run_model ~policy ~tiles:16 (cfg_of pf) ~n:8192
      in
      Printf.printf "%-18s %-8s %10d %12.2f %12.1f\n" pf
        (Engine.policy_to_string policy)
        r.stats.Engine.tasks r.stats.Engine.makespan r.gflops_effective)
    [
      ("xeon-single", Engine.Eager);
      ("xeon-x5550-smp", Engine.Eager);
      ("xeon-x5550-smp", Engine.Heft);
      ("xeon-2gpu", Engine.Eager);
      ("xeon-2gpu", Engine.Heft);
    ];
  print_newline ();
  print_endline
    "expected shape: speedups are smaller than DGEMM's at equal sizes — \
     the DAG critical path (POTRF chain) limits parallelism; the GPUs \
     still help on the TRSM/SYRK/GEMM bulk."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let micro () =
  header "MICRO  toolchain microbenchmarks (Bechamel)";
  let open Bechamel in
  let listing1 =
    Pdl.Codec.to_string (Option.get (Pdl_hwprobe.Zoo.find "xeon-2gpu"))
  in
  let pattern = Pdl.Pattern.parse "Master[Worker{ARCHITECTURE=gpu}]" in
  let platform = Option.get (Pdl_hwprobe.Zoo.find "xeon-2gpu") in
  let xml = Pdl_xml.Decode.element_of_string_exn listing1 in
  let a128 = Kernels.Matrix.random ~seed:1 128 128 in
  let b128 = Kernels.Matrix.random ~seed:2 128 128 in
  let dgemm_src =
    {|#pragma cascabel task : x86 : I : v : (A: read)
void f(double *A, int n) { for (int i = 0; i < n; i++) A[i] += 1.0; }
int main(void) { return 0; }
|}
  in
  let tests =
    [
      Test.make ~name:"xml_parse_pdl"
        (Staged.stage (fun () ->
             ignore (Pdl_xml.Decode.element_of_string_exn listing1)));
      Test.make ~name:"schema_validate"
        (Staged.stage (fun () -> ignore (Pdl.Pdl_schema.validate xml)));
      Test.make ~name:"codec_decode"
        (Staged.stage (fun () -> ignore (Pdl.Codec.of_string listing1)));
      Test.make ~name:"pattern_match"
        (Staged.stage (fun () -> ignore (Pdl.Pattern.matches pattern platform)));
      Test.make ~name:"machine_config"
        (Staged.stage (fun () -> ignore (MC.of_platform platform)));
      Test.make ~name:"minic_parse"
        (Staged.stage (fun () -> ignore (Minic.Parser.parse dgemm_src)));
      Test.make ~name:"dgemm_128_blocked"
        (Staged.stage (fun () ->
             let c = Kernels.Matrix.create 128 128 in
             Kernels.Blas.dgemm a128 b128 c));
      Test.make ~name:"sim_fig5_model"
        (Staged.stage (fun () ->
             ignore
               (TD.run_model ~policy:Engine.Heft ~tiles:8 (cfg_of "xeon-2gpu")
                  ~n:8192)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Printf.printf "%-28s %14s\n" "benchmark" "ns/run";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %14.1f\n" name est
          | _ -> Printf.printf "%-28s %14s\n" name "?")
        results)
    tests

(* ------------------------------------------------------------------ *)

let all =
  [
    ("fig5", fig5); ("sweep", sweep); ("sched", sched); ("tile", tile);
    ("presel", presel); ("chol", chol); ("micro", micro);
  ]

let () =
  match Sys.argv with
  | [| _ |] -> List.iter (fun (_, f) -> f ()) all
  | [| _; name |] -> (
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" name
            (String.concat ", " (List.map fst all));
          exit 1)
  | _ ->
      prerr_endline "usage: main.exe [fig5|sweep|sched|tile|presel|chol|micro]";
      exit 1

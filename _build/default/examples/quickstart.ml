(* Quickstart: author a PDL document, validate it, query it, and
   instantiate a runtime machine from it.

     dune exec examples/quickstart.exe *)

(* Listing 1 of the paper: an x86 Master controlling one GPU Worker
   over rDMA. *)
let listing1 =
  {|<Master id="0" quantity="1">
  <PUDescriptor>
    <Property fixed="true">
      <name>ARCHITECTURE</name>
      <value>x86</value>
    </Property>
  </PUDescriptor>
  <Worker quantity="1" id="1">
    <PUDescriptor>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>gpu</value>
      </Property>
    </PUDescriptor>
  </Worker>
  <Interconnect type="rDMA" from="0" to="1" scheme=""/>
</Master>|}

let () =
  (* 1. Parse + schema-validate + model-validate in one step. *)
  let platform =
    match Pdl.Codec.load_string listing1 with
    | Ok pf -> pf
    | Error msgs ->
        prerr_endline (String.concat "\n" msgs);
        exit 1
  in
  Printf.printf "loaded a platform with %d processing units\n"
    (Pdl_model.Machine.pu_count platform);

  (* 2. Query it: the paper's "simple query API". *)
  let open Pdl.Query in
  Printf.printf "gpu workers: %d\n"
    (count ~where:(is_worker &&& architecture_is "gpu") platform);
  (match first ~where:is_master platform with
  | Some m -> Printf.printf "master PU id: %s\n" m.Pdl_model.Machine.pu_id
  | None -> ());
  (match select platform "//Worker[@id='1']" with
  | Ok [ w ] ->
      Printf.printf "worker 1 architecture: %s\n"
        (Option.value ~default:"?"
           (Pdl_model.Machine.pu_property w "ARCHITECTURE"))
  | _ -> ());

  (* 3. Match an abstract platform pattern (what Cascabel's
     pre-selection does). *)
  let pattern = Pdl.Pattern.parse "Master{ARCHITECTURE=x86}[Worker{ARCHITECTURE=gpu}@dev]" in
  (match Pdl.Pattern.find_matches pattern platform with
  | [ (_, binding) ] ->
      Printf.printf "pattern matches; @dev bound to PU %s\n"
        (List.assoc "dev" binding).Pdl_model.Machine.pu_id
  | _ -> print_endline "pattern did not match");

  (* 4. Instantiate the runtime machine the descriptor describes. *)
  (match Taskrt.Machine_config.of_platform platform with
  | Ok cfg -> print_string (Taskrt.Machine_config.describe cfg)
  | Error e -> Printf.printf "no runtime machine: %s\n" e);

  (* 5. Round trip back to XML. *)
  print_endline "--- canonical form ---";
  print_string (Pdl.Codec.to_string platform)

(* Platform zoo tour: the PDL expressing different classes of
   heterogeneous systems, multiple logical views of one physical
   machine, and pattern-based capability discovery.

     dune exec examples/platform_zoo.exe *)

open Pdl_model.Machine

let () =
  (* --- 1. the zoo ------------------------------------------------- *)
  print_endline "=== predefined platforms ===";
  List.iter
    (fun (name, pf) ->
      Printf.printf "%-18s masters=%d hybrids=%d workers=%d units=%d depth=%d\n"
        name
        (List.length (masters pf))
        (List.length (hybrids pf))
        (List.length (workers pf))
        (unit_count pf) (depth pf))
    Pdl_hwprobe.Zoo.all;

  (* --- 2. capability discovery with patterns ---------------------- *)
  print_endline "\n=== which platforms can run which code? ===";
  let probes =
    [
      ("gpu offload", "Master[Worker{ARCHITECTURE=gpu}]");
      ("8-way cpu pool", "Master[Worker{ROLE=cpu-core,quantity>=8}]");
      ("cell-style hierarchy", "Hybrid[Worker{ARCHITECTURE=spe}]");
      ("dual gpu", "Master[Worker{ARCHITECTURE=gpu},Worker{ARCHITECTURE=gpu}]");
    ]
  in
  List.iter
    (fun (label, pattern_src) ->
      let pattern = Pdl.Pattern.parse pattern_src in
      let hits =
        List.filter (fun (_, pf) -> Pdl.Pattern.matches pattern pf)
          Pdl_hwprobe.Zoo.all
      in
      Printf.printf "%-22s %s\n" label
        (if hits = [] then "(none)" else String.concat ", " (List.map fst hits)))
    probes;

  (* --- 3. multiple logical views of one physical system ----------- *)
  print_endline "\n=== two logical views of the Cell blade ===";
  let cell = Pdl_hwprobe.Zoo.cell_qs20 in
  let flat = Pdl.View.apply_exn Pdl.View.flatten cell in
  Printf.printf "hierarchical view: depth %d, %d hybrids\n" (depth cell)
    (List.length (hybrids cell));
  Printf.printf "host-device view:  depth %d, %d workers under the master\n"
    (depth flat)
    (List.length (List.hd flat.pf_masters).pu_children);
  Printf.printf "both views valid: %b\n"
    (Pdl_model.Validate.is_valid cell && Pdl_model.Validate.is_valid flat);

  (* The same program maps differently under each view. *)
  let spe_pattern = Pdl.Pattern.parse "Master[Worker{ARCHITECTURE=spe}]" in
  Printf.printf "host-device SPE offload pattern: hierarchical=%b flat=%b\n"
    (Pdl.Pattern.matches spe_pattern cell)
    (Pdl.Pattern.matches spe_pattern flat);

  (* --- 4. grouping: defining execution sets on the fly ------------ *)
  print_endline "\n=== regrouping the quad-gpu node ===";
  let quad = Pdl_hwprobe.Zoo.opencl_quad_gpu in
  let fast_gpus =
    Pdl.View.apply_exn
      (Pdl.View.regroup ~group:"fast"
         ~where:Pdl.Query.(property_at_least "DGEMM_THROUGHPUT" 100))
      quad
  in
  Printf.printf "PUs in group \"fast\": %s\n"
    (String.concat ", "
       (List.map (fun pu -> pu.pu_id) (group_members fast_gpus "fast")));

  (* --- 5. interconnect reasoning ---------------------------------- *)
  print_endline "\n=== data paths on xeon-2gpu ===";
  let pf = Pdl_hwprobe.Zoo.xeon_2gpu in
  List.iter
    (fun route ->
      Printf.printf "route gpu0 -> gpu1: %s\n" (String.concat " -> " route))
    (routes pf "gpu0" "gpu1");
  List.iter
    (fun ic ->
      Printf.printf "%s -- %s (%s, %s MB/s)\n" ic.ic_from ic.ic_to ic.ic_type
        (Option.value ~default:"?"
           (property_value ic.ic_descriptor "BANDWIDTH_MBPS")))
    (all_interconnects pf)

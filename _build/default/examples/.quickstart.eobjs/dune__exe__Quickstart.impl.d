examples/quickstart.ml: List Option Pdl Pdl_model Printf String Taskrt

examples/autogen_pdl.ml: List Pdl Pdl_hwprobe Printf String Taskrt

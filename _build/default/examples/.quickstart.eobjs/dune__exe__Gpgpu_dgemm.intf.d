examples/gpgpu_dgemm.mli:

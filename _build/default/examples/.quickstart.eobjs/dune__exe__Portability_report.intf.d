examples/portability_report.mli:

examples/portability_report.ml: Array Cascabel List Minic Pdl Pdl_hwprobe Printf String Taskrt

examples/autogen_pdl.mli:

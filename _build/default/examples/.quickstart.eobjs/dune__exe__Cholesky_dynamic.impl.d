examples/cholesky_dynamic.ml: Array Filename Kernels List Option Pdl_hwprobe Printf Taskrt

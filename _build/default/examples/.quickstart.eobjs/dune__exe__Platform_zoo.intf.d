examples/platform_zoo.mli:

examples/platform_zoo.ml: List Option Pdl Pdl_hwprobe Pdl_model Printf String

examples/cholesky_dynamic.mli:

examples/gpgpu_dgemm.ml: Cascabel List Minic Pdl_hwprobe Printf String Taskrt

examples/quickstart.mli:

(* Tiled Cholesky on a PDL-described machine, with dynamic resource
   events (the paper's §VI future work) and trace export.

   A dependency-rich task DAG (POTRF/TRSM/SYRK/GEMM) is scheduled on
   the two-GPU testbed; mid-run, one GPU fails and later a thermal
   event halves the other's throughput. The runtime redistributes and
   the factorization still verifies.

     dune exec examples/cholesky_dynamic.exe *)

module Engine = Taskrt.Engine
module MC = Taskrt.Machine_config

let () =
  let cfg = MC.of_platform_exn Pdl_hwprobe.Zoo.xeon_2gpu in
  let n = 64 in
  let a = Kernels.Lapack.random_spd ~seed:42 n in

  (* --- 1. a healthy run ------------------------------------------ *)
  let healthy = Taskrt.Tiled_cholesky.run ~policy:Engine.Heft ~tiles:8 cfg a in
  Printf.printf "healthy run: %d tasks in %.6f virtual s, residual %.2e\n"
    healthy.stats.Engine.tasks healthy.stats.Engine.makespan
    (Kernels.Lapack.cholesky_residual ~a ~l:(Option.get healthy.l));

  (* --- 2. same run with failures injected ------------------------- *)
  let disturbed =
    Taskrt.Tiled_cholesky.run ~policy:Engine.Heft ~tiles:8
      ~configure:(fun rt ->
        Engine.at rt ~time:(healthy.stats.Engine.makespan /. 4.0) (fun () ->
            Engine.set_offline rt ~worker:"gpu0");
        Engine.at rt ~time:(healthy.stats.Engine.makespan /. 2.0) (fun () ->
            Engine.set_gflops rt ~worker:"gpu1" 35.0))
      cfg a
  in
  Printf.printf
    "with gpu0 failure + gpu1 throttled: %.6f virtual s (%.2fx slower), \
     residual %.2e\n"
    disturbed.stats.Engine.makespan
    (disturbed.stats.Engine.makespan /. healthy.stats.Engine.makespan)
    (Kernels.Lapack.cholesky_residual ~a ~l:(Option.get disturbed.l));

  (* --- 3. per-worker accounting ----------------------------------- *)
  print_endline "\nper-worker task counts (disturbed run):";
  Array.iter
    (fun ws ->
      Printf.printf "  %-12s %4d tasks, busy %.6f s\n"
        ws.Engine.ws_worker.MC.w_name ws.Engine.tasks_run ws.Engine.busy_s)
    disturbed.stats.Engine.worker_stats;

  (* --- 4. DAG-shape comparison: the model at scale ----------------- *)
  print_endline "\nCholesky 8192 (timing model), smp vs 2gpu:";
  List.iter
    (fun (name, cfg_name) ->
      let r =
        Taskrt.Tiled_cholesky.run_model ~policy:Engine.Heft ~tiles:16
          (MC.of_platform_exn (Option.get (Pdl_hwprobe.Zoo.find cfg_name)))
          ~n:8192
      in
      Printf.printf "  %-14s %8.2f s  %8.1f GFLOP/s\n" name
        r.stats.Engine.makespan r.gflops_effective)
    [ ("xeon-x5550-smp", "xeon-x5550-smp"); ("xeon-2gpu", "xeon-2gpu") ];

  (* --- 5. trace export --------------------------------------------- *)
  let rt = Engine.create ~policy:Engine.Heft cfg in
  let ha = Taskrt.Data.register_matrix (Kernels.Matrix.copy a) in
  let grid = Taskrt.Data.partition_tiles ha ~rows:4 ~cols:4 in
  let open Taskrt.Codelet in
  Engine.submit rt
    (noop ~name:"potrf" ~flops:1e8 ~archs:[ "cpu" ])
    [ (grid.(0).(0), RW) ];
  Engine.submit rt
    (noop ~name:"trsm" ~flops:1e8 ~archs:[ "cpu"; "gpu" ])
    [ (grid.(0).(0), R); (grid.(1).(0), RW) ];
  let _ = Engine.wait_all rt in
  let path = Filename.temp_file "cholesky" ".trace.json" in
  Taskrt.Trace_export.write_chrome path (Engine.trace rt);
  Printf.printf "\nchrome trace written to %s (load in chrome://tracing)\n"
    path;
  print_string (Taskrt.Trace_export.summary (Engine.trace rt))

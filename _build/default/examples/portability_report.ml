(* Performance-portability report: the paper motivates PDL as a step
   "towards support of performance-portability guarantees for
   well-defined classes of target environments" (§II). This example
   generates such a report: for each zoo platform it checks which task
   variants apply (pattern pre-selection), derives analytic
   performance bounds from the descriptor alone, and cross-checks them
   against the simulated runtime.

     dune exec examples/portability_report.exe *)

module MC = Taskrt.Machine_config
module Engine = Taskrt.Engine

let variants_src =
  {|#pragma cascabel task : x86 : Idgemm : dgemm_seq : (A: read, B: read, C: readwrite)
void dgemm_seq(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : smp : Idgemm : dgemm_smp : (A: read, B: read, C: readwrite)
void dgemm_smp(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : Cuda : Idgemm : dgemm_cublas : (A: read, B: read, C: readwrite)
void dgemm_cublas(double *A, double *B, double *C, int m, int n) { }

#pragma cascabel task : CellSDK : Idgemm : dgemm_cell : (A: read, B: read, C: readwrite)
void dgemm_cell(double *A, double *B, double *C, int m, int n) { }
|}

let () =
  let n = 8192 in
  let unit_ =
    match Minic.Parser.parse variants_src with
    | Ok u -> u
    | Error e -> failwith (Minic.Parser.error_to_string e)
  in
  Printf.printf
    "DGEMM %dx%d performance-portability report (4 task variants)\n\n" n n;
  Printf.printf "%-18s %-14s %10s %12s %12s %10s\n" "platform" "chosen"
    "bound [s]" "sim [s]" "sim GF/s" "sim/bound";
  List.iter
    (fun (name, platform) ->
      let repo = Cascabel.Repository.create () in
      (match Cascabel.Repository.register_unit repo unit_ with
      | Ok _ -> ()
      | Error e -> failwith e);
      match Cascabel.Preselect.select repo platform with
      | Error e -> Printf.printf "%-18s unsupported: %s\n" name e
      | Ok [ sel ] ->
          let chosen =
            match sel.chosen with
            | Some v -> v.Cascabel.Repository.v_name
            | None -> "?"
          in
          let cfg = MC.of_platform_exn platform in
          let bounds = Taskrt.Predict.dgemm_bounds cfg ~n in
          let sim =
            Taskrt.Tiled_dgemm.run_model ~policy:Engine.Heft
              ~tiles:(min 8 (Array.length cfg.workers))
              cfg ~n
          in
          Printf.printf "%-18s %-14s %10.3f %12.3f %12.1f %9.2fx\n" name
            chosen bounds.lower_bound_s sim.stats.Engine.makespan
            sim.gflops_effective
            (sim.stats.Engine.makespan /. bounds.lower_bound_s)
      | Ok _ -> assert false)
    Pdl_hwprobe.Zoo.all;
  print_newline ();
  print_endline
    "bound: analytic lower bound from the PDL properties alone \
     (work/aggregate-throughput vs link transfer).";
  print_endline
    "sim/bound close to 1 means the descriptor alone predicts the \
     machine well — performance portability is explainable from the \
     PDL.";

  (* Where a platform pattern guards optimized code (paper: "highly
     optimized code ... equipped with additional platform
     requirements"), show the guarantee check. *)
  print_endline "\narchitectural-requirement checks (pattern guards):";
  List.iter
    (fun (req_name, pattern_src) ->
      let pattern = Pdl.Pattern.parse pattern_src in
      let ok_on =
        List.filter_map
          (fun (name, pf) ->
            if Pdl.Pattern.matches pattern pf then Some name else None)
          Pdl_hwprobe.Zoo.all
      in
      Printf.printf "  %-34s %s\n" req_name (String.concat ", " ok_on))
    [
      ("needs >=100 GF/s device", "Worker{DGEMM_THROUGHPUT>=100}");
      ("needs 8-way cpu pool", "Worker{ROLE=cpu-core,quantity>=8}");
      ("needs local-store accelerator", "Hybrid[Worker{ARCHITECTURE=spe}]");
    ]

/* The paper's case study input: a serial program whose DGEMM call
   is annotated for offload. Translated output programs are built
   for different PDL descriptors without editing this file. */
#define N 32

#pragma cascabel task : x86
    : Idgemm
    : dgemm_blas
    : (A: read, B: read, C: readwrite)
void dgemm(double *A, double *B, double *C, int m, int n)
{
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      double acc = 0.0;
      for (int k = 0; k < n; k++)
        acc += A[i * n + k] * B[k * n + j];
      C[i * n + j] += acc;
    }
  }
}

#pragma cascabel task : Cuda
    : Idgemm
    : dgemm_cublas
    : (A: read, B: read, C: readwrite)
void dgemm_cublas(double *A, double *B, double *C, int m, int n)
{
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      double acc = 0.0;
      for (int k = 0; k < n; k++)
        acc += A[i * n + k] * B[k * n + j];
      C[i * n + j] += acc;
    }
  }
}

int main(void)
{
  double *A = malloc(N * N * sizeof(double));
  double *B = malloc(N * N * sizeof(double));
  double *C = malloc(N * N * sizeof(double));
  for (int i = 0; i < N * N; i++) {
    A[i] = 1.0 + i % 9;
    B[i] = 0.5 * (i % 11);
    C[i] = 0.0;
  }
  #pragma cascabel execute Idgemm
      : executionset01
      (A:BLOCK:m, C:BLOCK:m)
  dgemm(A, B, C, N, N);
  double checksum = 0.0;
  for (int i = 0; i < N * N; i++)
    checksum += C[i];
  printf("checksum=%.3f\n", checksum);
  return 0;
}

(* The paper's case study, end to end (§IV-D / Figure 5).

   A serial task-annotated DGEMM program is translated — parameterized
   only by the target PDL descriptor — into programs for (a) an
   8-core SMP and (b) the same machine with two GPUs, then executed
   on the simulated runtime. Functional correctness is checked at a
   small size; the Figure 5 speedups are then reproduced at the
   paper's size (8192) with the timing model.

     dune exec examples/gpgpu_dgemm.exe *)

let input_program =
  {|#define N 48

#pragma cascabel task : x86 : Idgemm : dgemm_blas : (A: read, B: read, C: readwrite)
void dgemm(double *A, double *B, double *C, int m, int n)
{
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      double acc = 0.0;
      for (int k = 0; k < n; k++)
        acc += A[i * n + k] * B[k * n + j];
      C[i * n + j] += acc;
    }
  }
}

#pragma cascabel task : Cuda : Idgemm : dgemm_cublas : (A: read, B: read, C: readwrite)
void dgemm_gpu(double *A, double *B, double *C, int m, int n)
{
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      double acc = 0.0;
      for (int k = 0; k < n; k++)
        acc += A[i * n + k] * B[k * n + j];
      C[i * n + j] += acc;
    }
  }
}

int main(void)
{
  double *A = malloc(N * N * sizeof(double));
  double *B = malloc(N * N * sizeof(double));
  double *C = malloc(N * N * sizeof(double));
  for (int i = 0; i < N * N; i++) {
    A[i] = 1.0 + i % 9;
    B[i] = 0.5 * (i % 11);
    C[i] = 0.0;
  }
  #pragma cascabel execute Idgemm : executionset01 (A:BLOCK:m, C:BLOCK:m)
  dgemm(A, B, C, N, N);
  double checksum = 0.0;
  for (int i = 0; i < N * N; i++)
    checksum += C[i];
  printf("checksum=%.3f\n", checksum);
  return 0;
}
|}

let () =
  let unit_ =
    match Minic.Parser.parse input_program with
    | Ok u -> u
    | Error e ->
        prerr_endline (Minic.Parser.error_to_string e);
        exit 1
  in

  (* --- 1. the serial baseline ("single") ------------------------- *)
  let serial_code, serial_out =
    match Cascabel.Runnable.run_serial unit_ with
    | Ok r -> r
    | Error e ->
        prerr_endline e;
        exit 1
  in
  Printf.printf "serial run: exit %d, %s" serial_code serial_out;

  (* --- 2. translate for two PDL descriptors, no source edits ----- *)
  let translate name platform =
    let repo = Cascabel.Repository.create () in
    match Cascabel.Codegen.translate ~repo ~platform unit_ with
    | Ok out ->
        Printf.printf "\n=== translation for %s ===\n" name;
        print_string (Cascabel.Preselect.report out.selections);
        Printf.printf "compilers: %s\n"
          (String.concat ", "
             (List.map
                (fun s -> s.Cascabel.Compile_plan.s_compiler)
                out.plan.Cascabel.Compile_plan.steps))
    | Error msgs -> List.iter prerr_endline msgs
  in
  translate "xeon-x5550-smp" Pdl_hwprobe.Zoo.xeon_x5550_smp;
  translate "xeon-2gpu" Pdl_hwprobe.Zoo.xeon_2gpu;

  (* --- 3. execute both translations; results must equal serial --- *)
  let run name platform =
    let repo = Cascabel.Repository.create () in
    match
      Cascabel.Runnable.run ~policy:Taskrt.Engine.Heft ~repo ~platform unit_
    with
    | Ok r ->
        Printf.printf "%-16s %s (%d tasks, %.6f virtual s)%s\n" name
          (String.trim r.stdout) r.stats.tasks r.stats.makespan
          (if r.stdout = serial_out then "  [matches serial]"
           else "  [MISMATCH]")
    | Error e -> Printf.printf "%-16s failed: %s\n" name e
  in
  print_newline ();
  run "starpu" Pdl_hwprobe.Zoo.xeon_x5550_smp;
  run "starpu+2gpus" Pdl_hwprobe.Zoo.xeon_2gpu;

  (* --- 4. Figure 5 at the paper's size (timing model) ------------ *)
  print_endline "\n=== Figure 5 (DGEMM 8192x8192, timing model) ===";
  let n = 8192 in
  let model name platform ~tiles ~policy =
    let cfg = Taskrt.Machine_config.of_platform_exn platform in
    Taskrt.Tiled_dgemm.run_model ~policy ~tiles cfg ~n
    |> fun r -> (name, r)
  in
  let single =
    model "single" Pdl_hwprobe.Zoo.single_core ~tiles:1
      ~policy:Taskrt.Engine.Eager
  in
  let smp =
    model "starpu" Pdl_hwprobe.Zoo.xeon_x5550_smp ~tiles:8
      ~policy:Taskrt.Engine.Eager
  in
  let gpu =
    model "starpu+2gpus" Pdl_hwprobe.Zoo.xeon_2gpu ~tiles:8
      ~policy:Taskrt.Engine.Heft
  in
  List.iter
    (fun (name, (r : Taskrt.Tiled_dgemm.result)) ->
      Printf.printf "%-14s %8.2f s   speedup %5.2fx   %7.1f GFLOP/s\n" name
        r.stats.makespan
        (Taskrt.Tiled_dgemm.speedup ~baseline:(snd single) r)
        r.gflops_effective)
    [ single; smp; gpu ]

(* Automatic PDL generation and the unfixed-property workflow
   (paper Figure 1 "possible automatic generation of PDL descriptors"
   and §III-B's fixed/unfixed properties).

   A hand-written descriptor declares requirements with unfixed
   (placeholder) properties; a probe of the machine generates a
   concrete descriptor; overlaying instantiates the placeholders —
   the paper's "definition of required descriptors at program
   composition time with later instantiation by a runtime".

     dune exec examples/autogen_pdl.exe *)

(* A descriptor written at program-composition time: the author
   promises a GPU worker but leaves the measured properties open. *)
let composed =
  {|<Master id="host">
  <PUDescriptor>
    <Property fixed="true"><name>ARCHITECTURE</name><value>x86_64</value></Property>
  </PUDescriptor>
  <Worker id="gpu0">
    <PUDescriptor>
      <Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property>
      <Property fixed="false"><name>DEVICE_NAME</name><value></value></Property>
      <Property fixed="false"><name>MAX_COMPUTE_UNITS</name><value></value></Property>
      <Property fixed="false"><name>GLOBAL_MEM_SIZE</name><value></value></Property>
    </PUDescriptor>
    <LogicGroupAttribute>gpus</LogicGroupAttribute>
  </Worker>
  <Interconnect type="PCIe" from="host" to="gpu0"/>
</Master>|}

let () =
  let base =
    match Pdl.Codec.load_string composed with
    | Ok pf -> pf
    | Error msgs ->
        prerr_endline (String.concat "\n" msgs);
        exit 1
  in
  Printf.printf "composed descriptor has %d unfilled properties: %s\n"
    (List.length (Pdl.Diff.missing_values base))
    (String.concat ", "
       (List.map (fun (id, p) -> id ^ "." ^ p) (Pdl.Diff.missing_values base)));

  (* Probe the machine (simulated GTX 480 behind PCIe). *)
  let probed =
    Pdl_hwprobe.Probe.to_platform
      (Pdl_hwprobe.Probe.machine ~hostname:"local"
         Pdl_hwprobe.Device_db.xeon_x5550
         ~gpus:[ (Pdl_hwprobe.Device_db.gtx480, Pdl_hwprobe.Device_db.pcie2_x16) ])
  in
  print_endline "\n--- hwloc-style view of the probed machine ---";
  print_string
    (Pdl_hwprobe.Probe.hwloc_render
       (Pdl_hwprobe.Probe.machine ~hostname:"local"
          Pdl_hwprobe.Device_db.xeon_x5550
          ~gpus:[ (Pdl_hwprobe.Device_db.gtx480, Pdl_hwprobe.Device_db.pcie2_x16) ]));

  (* Instantiate the composed descriptor from the probe (matching PU
     ids: the probe names its first GPU "gpu0" too). *)
  let instantiated = Pdl.Diff.overlay ~base ~probe:probed in
  print_endline "\n--- instantiated descriptor ---";
  print_string (Pdl.Codec.to_string instantiated);
  Printf.printf "\nremaining unfilled: %d\n"
    (List.length (Pdl.Diff.missing_values instantiated));

  (* What changed? *)
  print_endline "\n--- diff composed -> instantiated ---";
  List.iter
    (fun c -> print_endline ("  " ^ Pdl.Diff.change_to_string c))
    (Pdl.Diff.diff base instantiated);

  (* The instantiated descriptor immediately parameterizes a runtime
     machine. *)
  print_endline "\n--- runtime machine from the instantiated PDL ---";
  match Taskrt.Machine_config.of_platform instantiated with
  | Ok cfg -> print_string (Taskrt.Machine_config.describe cfg)
  | Error e -> prerr_endline e
